#pragma once

// FlagRegistry: the declarative command-line surface shared by the driver
// and the benches.  Every flag is declared exactly once — name, type,
// default, help text, optional legacy aliases — and the registry derives
// everything that used to be hand-rolled per tool: the `--help` reference,
// typed accessors with defaults, alias resolution, and rejection of
// undeclared options with a nearest-match suggestion (a typo like
// `--fault-drp` used to pass silently; now it exits with "did you mean
// --fault-drop?").
//
// The registry layers on cli::Args (the GNU-style tokenizer), which keeps
// positional arguments and `--key=value` handling in one place.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/args.h"

namespace dsf::cli {

/// Thrown by parse() for an option no flag declares.  The message names
/// the closest declared flag when one is plausibly intended.  A FlagError
/// like every other user-caused parse failure, so drivers can catch the
/// whole family with one handler and exit with the usage status.
class UnknownFlag : public FlagError {
 public:
  using FlagError::FlagError;
};

/// Edit distance used for the typo suggestion (exposed for tests).
std::size_t edit_distance(const std::string& a, const std::string& b);

class FlagRegistry {
 public:
  /// `program` and `summary` head the generated --help text.
  explicit FlagRegistry(std::string program, std::string summary = "");

  /// Starts a titled group; subsequent declarations belong to it.
  FlagRegistry& group(std::string title);

  FlagRegistry& add_string(const std::string& name, std::string def,
                           std::string help);
  FlagRegistry& add_int(const std::string& name, std::int64_t def,
                        std::string help);
  FlagRegistry& add_double(const std::string& name, double def,
                           std::string help);
  FlagRegistry& add_bool(const std::string& name, bool def, std::string help);

  /// Declares `alt` as an accepted alternate spelling of `canonical`
  /// (legacy names scripts still pass).  Shown next to the canonical
  /// flag in --help.  When both spellings are given, the canonical one
  /// wins.
  FlagRegistry& alias(const std::string& alt, const std::string& canonical);

  /// Drops `name` from the --help listing (bulk-generated families like
  /// the 27 per-type fault overrides document themselves as one line via
  /// note() instead).  The flag still parses normally.
  FlagRegistry& hide(const std::string& name);

  /// Adds one free-form line under the current group in --help.
  FlagRegistry& note(std::string text);

  /// Tokenizes argv and binds values.  Throws UnknownFlag for an
  /// undeclared option (with a suggestion) and FlagError for a value that
  /// does not parse as — or overflow — the declared type.  `--help` is
  /// always declared; test help_requested() before reading flags.
  const Args& parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_requested_; }
  /// The generated flag reference (usage line, groups, defaults, aliases).
  std::string help() const;

  /// Typed accessors: the bound value, or the declared default.  Throw
  /// std::logic_error for an undeclared name (a programming error) and
  /// FlagError for a type mismatch or an out-of-range value.
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when the flag (under any spelling) appeared on the command
  /// line — lets "specific wins over generic" logic distinguish an
  /// explicit value from a default.
  bool was_set(const std::string& name) const;

  /// The underlying tokenizer (for positional arguments).  Valid after
  /// parse().
  const Args& args() const { return *args_; }

 private:
  enum class Type : std::uint8_t { kString, kInt, kDouble, kBool };

  struct Flag {
    std::string name;
    Type type = Type::kString;
    std::string help;
    std::size_t group = 0;
    bool hidden = false;
    std::vector<std::string> aliases;
    // Typed defaults (only the declared type's slot is meaningful).
    std::string def_string;
    std::int64_t def_int = 0;
    double def_double = 0.0;
    bool def_bool = false;
    // Bound state, filled by parse().
    bool set = false;
    std::string value;
  };

  struct Group {
    std::string title;
    std::vector<std::string> notes;
  };

  Flag& declare(const std::string& name, Type type, std::string help);
  const Flag& find(const std::string& name) const;
  /// The declared flag an option key refers to (canonical or alias), or
  /// nullptr.
  Flag* resolve(const std::string& key);
  std::string suggest(const std::string& key) const;

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Group> groups_;
  std::optional<Args> args_;
  bool help_requested_ = false;
};

}  // namespace dsf::cli
