#include "cli/args.h"

#include <algorithm>
#include <stdexcept>

namespace dsf::cli {

namespace {

bool is_long_option(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

// Exactly `-c` for one alphabetic character.  Restricting to letters keeps
// negative numbers (`--offset -5`) parsing as values, not flags.
bool is_short_option(const std::string& arg) {
  return arg.size() == 2 && arg[0] == '-' &&
         ((arg[1] >= 'a' && arg[1] <= 'z') ||
          (arg[1] >= 'A' && arg[1] <= 'Z'));
}

bool is_option(const std::string& arg) {
  return is_long_option(arg) || is_short_option(arg);
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!is_option(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(is_long_option(arg) ? 2 : 1);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag` followed by another option or nothing is a boolean flag;
    // otherwise the next token is its value.
    if (i + 1 < argc && !is_option(argv[i + 1])) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";
    }
  }
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  recognized_.insert(key);
  return it->second;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  const std::int64_t parsed = std::stoll(*v, &pos);
  if (pos != v->size())
    throw std::invalid_argument("--" + key + ": not an integer: " + *v);
  return parsed;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  const double parsed = std::stod(*v, &pos);
  if (pos != v->size())
    throw std::invalid_argument("--" + key + ": not a number: " + *v);
  return parsed;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("--" + key + ": not a boolean: " + *v);
}

std::vector<std::string> Args::unrecognized() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_)
    if (recognized_.count(key) == 0) out.push_back(key);
  return out;
}

}  // namespace dsf::cli
