#include "cli/args.h"

#include <algorithm>
#include <stdexcept>

namespace dsf::cli {

namespace {

bool is_long_option(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

// Exactly `-c` for one alphabetic character.  Restricting to letters keeps
// negative numbers (`--offset -5`) parsing as values, not flags.
bool is_short_option(const std::string& arg) {
  return arg.size() == 2 && arg[0] == '-' &&
         ((arg[1] >= 'a' && arg[1] <= 'z') ||
          (arg[1] >= 'A' && arg[1] <= 'Z'));
}

bool is_option(const std::string& arg) {
  return is_long_option(arg) || is_short_option(arg);
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!is_option(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(is_long_option(arg) ? 2 : 1);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag` followed by another option or nothing is a boolean flag;
    // otherwise the next token is its value.
    if (i + 1 < argc && !is_option(argv[i + 1])) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";
    }
  }
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  recognized_.insert(key);
  return it->second;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  // std::stoll throws std::out_of_range for values that parse but do not
  // fit — surface both failure modes as the typed FlagError instead of
  // letting the overflow escape and abort the driver.
  std::size_t pos = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(*v, &pos);
  } catch (const std::out_of_range&) {
    throw FlagError("--" + key + ": integer out of range: " + *v);
  } catch (const std::invalid_argument&) {
    pos = std::string::npos;
  }
  if (pos != v->size())
    throw FlagError("--" + key + ": not an integer: " + *v);
  return parsed;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(*v, &pos);
  } catch (const std::out_of_range&) {
    throw FlagError("--" + key + ": number out of range: " + *v);
  } catch (const std::invalid_argument&) {
    pos = std::string::npos;
  }
  if (pos != v->size())
    throw FlagError("--" + key + ": not a number: " + *v);
  return parsed;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw FlagError("--" + key + ": not a boolean: " + *v);
}

std::vector<std::string> Args::unrecognized() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_)
    if (recognized_.count(key) == 0) out.push_back(key);
  return out;
}

}  // namespace dsf::cli
