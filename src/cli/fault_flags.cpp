#include "cli/fault_flags.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "net/message.h"

namespace dsf::cli {

FaultOptions parse_fault_options(const Args& args) {
  FaultOptions opts;

  sim::FaultRule base;
  base.drop_prob = args.get_double("fault-drop", 0.0);
  base.duplicate_prob = args.get_double("fault-dup", 0.0);
  base.delay_prob = args.get_double("fault-delay", 0.0);
  base.extra_delay_s = args.get_double("fault-delay-s", 1.0);
  base.window_start_s = args.get_double("fault-window-start", 0.0);
  base.window_end_s = args.get_double(
      "fault-window-end", std::numeric_limits<double>::infinity());

  for (int i = 0; i < net::kNumMessageTypes; ++i) {
    const auto t = static_cast<net::MessageType>(i);
    const std::string name(net::to_string(t));
    sim::FaultRule r = base;
    r.drop_prob = args.get_double("fault-drop-" + name, r.drop_prob);
    r.duplicate_prob = args.get_double("fault-dup-" + name, r.duplicate_prob);
    r.delay_prob = args.get_double("fault-delay-" + name, r.delay_prob);
    if (!r.trivial()) opts.plan.set_rule(t, r);
  }

  opts.crashes.rate_per_hour = args.get_double("fault-crash-rate", 0.0);
  const std::int64_t crash_max = args.get_int("fault-crash-max", -1);
  if (crash_max >= 0) opts.crashes.max_crashes = crash_max;
  opts.crashes.start_s = args.get_double("fault-crash-start", 0.0);
  opts.crashes.end_s = args.get_double(
      "fault-crash-end", std::numeric_limits<double>::infinity());
  if (opts.crashes.rate_per_hour < 0.0)
    throw std::invalid_argument("--fault-crash-rate: must be >= 0");
  if (opts.crashes.start_s < 0.0 ||
      opts.crashes.end_s <= opts.crashes.start_s)
    throw std::invalid_argument(
        "--fault-crash-start/--fault-crash-end: need 0 <= start < end");

  opts.check = args.get_bool("fault-check", false);
  return opts;
}

}  // namespace dsf::cli
