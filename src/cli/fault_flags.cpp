#include "cli/fault_flags.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "net/message.h"

namespace dsf::cli {

void register_fault_flags(FlagRegistry& reg) {
  reg.group("fault injection (all off by default)");
  reg.add_double("fault-drop", 0.0, "drop probability for every type")
      .add_double("fault-dup", 0.0, "duplication probability for every type")
      .add_double("fault-delay", 0.0, "extra-delay probability")
      .add_double("fault-delay-s", 1.0, "the extra delay itself, seconds")
      .add_double("fault-window-start", 0.0, "faults active from this time")
      .add_double("fault-window-end",
                  std::numeric_limits<double>::infinity(),
                  "... until this time (default: forever)")
      .add_double("fault-crash-rate", 0.0, "Poisson peer crashes per hour")
      .add_int("fault-crash-max", -1, "stop after N crashes (-1: unlimited)")
      .add_double("fault-crash-start", 0.0, "crash window start, seconds")
      .add_double("fault-crash-end", std::numeric_limits<double>::infinity(),
                  "crash window end (default: forever)")
      .add_bool("fault-check", false,
                "attach the invariant checker; exit 4 on violation");
  for (int i = 0; i < net::kNumMessageTypes; ++i) {
    const std::string name(
        net::to_string(static_cast<net::MessageType>(i)));
    for (const char* knob : {"fault-drop-", "fault-dup-", "fault-delay-"}) {
      const std::string flag = knob + name;
      reg.add_double(flag, -1.0, "").hide(flag);
    }
  }
  reg.note("--fault-{drop,dup,delay}-<type>: per-type overrides; <type> is");
  reg.note("the wire name (query, query-reply, ping, pong, explore-query,");
  reg.note("explore-reply, invitation, invitation-reply, eviction)");
}

FaultOptions fault_options_from(const FlagRegistry& reg) {
  FaultOptions opts;

  sim::FaultRule base;
  base.drop_prob = reg.get_double("fault-drop");
  base.duplicate_prob = reg.get_double("fault-dup");
  base.delay_prob = reg.get_double("fault-delay");
  base.extra_delay_s = reg.get_double("fault-delay-s");
  base.window_start_s = reg.get_double("fault-window-start");
  base.window_end_s = reg.get_double("fault-window-end");

  for (int i = 0; i < net::kNumMessageTypes; ++i) {
    const auto t = static_cast<net::MessageType>(i);
    const std::string name(net::to_string(t));
    sim::FaultRule r = base;
    if (reg.was_set("fault-drop-" + name))
      r.drop_prob = reg.get_double("fault-drop-" + name);
    if (reg.was_set("fault-dup-" + name))
      r.duplicate_prob = reg.get_double("fault-dup-" + name);
    if (reg.was_set("fault-delay-" + name))
      r.delay_prob = reg.get_double("fault-delay-" + name);
    if (!r.trivial()) opts.plan.set_rule(t, r);
  }

  opts.crashes.rate_per_hour = reg.get_double("fault-crash-rate");
  const std::int64_t crash_max = reg.get_int("fault-crash-max");
  if (crash_max >= 0) opts.crashes.max_crashes = crash_max;
  opts.crashes.start_s = reg.get_double("fault-crash-start");
  opts.crashes.end_s = reg.get_double("fault-crash-end");
  if (opts.crashes.rate_per_hour < 0.0)
    throw std::invalid_argument("--fault-crash-rate: must be >= 0");
  if (opts.crashes.start_s < 0.0 ||
      opts.crashes.end_s <= opts.crashes.start_s)
    throw std::invalid_argument(
        "--fault-crash-start/--fault-crash-end: need 0 <= start < end");

  opts.check = reg.get_bool("fault-check");
  return opts;
}

}  // namespace dsf::cli
