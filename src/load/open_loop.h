#pragma once

// Open-loop front-end types: the options block handed to
// OverlayEngine::set_open_loop, the per-peer admission queue, and the
// accounting every open-loop run reports (latency percentiles, goodput,
// rejection rate, queue-depth series).
//
// Determinism contract: the whole layer rides a dedicated RNG lane
// (derived via des::hash_seed from the scenario seed, like the fault
// lane), and a disabled layer schedules zero events and draws nothing —
// closed-loop runs stay byte-identical with the layer compiled in.

#include <cstdint>
#include <deque>
#include <vector>

#include "load/schedule.h"
#include "load/trace_reader.h"
#include "metrics/time_series.h"

namespace dsf::load {

/// Configuration for one open-loop run.  When `trace` is non-empty it
/// replaces the built-in generator (the schedule is then ignored).
struct OpenLoopOptions {
  bool enabled = false;
  ArrivalSchedule schedule;
  std::vector<TraceArrival> trace;
  /// Per-peer admission bound: waiting queries plus the one in service.
  /// Arrivals past the cap are rejected (shed), never queued.
  std::size_t admission_cap = 8;
  /// Queue-depth sampling period for the depth series (seconds).
  double queue_sample_period_s = 60.0;
};

/// What a scenario's serve_injected_query override reports back: the
/// service latency of one injected query and whether it found anything.
struct Served {
  double latency_s = 0.0;
  bool hit = false;
};

/// One admitted-but-unfinished injected query.
struct PendingQuery {
  double arrival_s = 0.0;
  std::uint64_t item = kAnyItem;
};

/// Per-peer single-server bounded FIFO.  depth() is what the admission
/// cap bounds.
struct PeerQueue {
  std::deque<PendingQuery> waiting;
  bool busy = false;
  std::size_t depth() const noexcept {
    return waiting.size() + (busy ? 1u : 0u);
  }
};

/// Everything an open-loop run measures.  Counters cover the whole run;
/// latency quality metrics (sojourn summary + histogram) record only
/// post-warmup completions.  Conservation (certified by
/// InvariantChecker::check_admission): offered == admitted + rejected and
/// admitted == completed + shed + pending.
struct LoadStats {
  std::uint64_t offered = 0;    ///< arrivals presented to admission
  std::uint64_t admitted = 0;   ///< accepted into a peer queue
  std::uint64_t rejected = 0;   ///< refused at admission (cap or dead peer)
  std::uint64_t completed = 0;  ///< service finished (hit or miss)
  std::uint64_t shed = 0;       ///< admitted, then dropped (peer crashed)
  std::uint64_t pending = 0;    ///< still queued/in service at end of run
  std::uint64_t hits = 0;       ///< completions that found a result

  /// Post-warmup completions/hits, the goodput numerator.
  std::uint64_t completed_after_warmup = 0;
  std::uint64_t hits_after_warmup = 0;

  /// End-to-end sojourn (admission -> completion: queue wait + service),
  /// post-warmup only.  The histogram feeds p50/p95/p99.
  metrics::Summary sojourn_s;
  metrics::Histogram sojourn_hist{0.0, 60.0, 6000};

  /// Aggregate queue depth sampled every queue_sample_period_s.
  metrics::Summary queue_depth;
  std::uint64_t peak_queue_depth = 0;

  /// Arrival/rejection counts bucketed per minute of simulated time.
  metrics::TimeSeries offered_series{60.0};
  metrics::TimeSeries rejected_series{60.0};
};

}  // namespace dsf::load
