#include "load/schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsf::load {

ScheduleKind parse_schedule(const std::string& name) {
  if (name == "constant") return ScheduleKind::kConstant;
  if (name == "diurnal") return ScheduleKind::kDiurnal;
  if (name == "flash") return ScheduleKind::kFlash;
  if (name == "step") return ScheduleKind::kStep;
  throw std::invalid_argument(
      "unknown arrival schedule: " + name +
      " (expected constant, diurnal, flash or step)");
}

const char* schedule_name(ScheduleKind kind) noexcept {
  switch (kind) {
    case ScheduleKind::kConstant: return "constant";
    case ScheduleKind::kDiurnal: return "diurnal";
    case ScheduleKind::kFlash: return "flash";
    case ScheduleKind::kStep: return "step";
  }
  return "?";
}

double ArrivalSchedule::rate_at(double t) const noexcept {
  switch (kind) {
    case ScheduleKind::kConstant:
      return base_qps;
    case ScheduleKind::kDiurnal: {
      // Trough base_qps at t = 0, crest base_qps * overload half a period
      // in: rate = base * (1 + (overload-1) * (1 - cos) / 2).
      const double phase = 2.0 * 3.14159265358979323846 * t / diurnal_period_s;
      return base_qps *
             (1.0 + (overload - 1.0) * 0.5 * (1.0 - std::cos(phase)));
    }
    case ScheduleKind::kFlash:
      return (t >= flash_start_s && t < flash_start_s + flash_duration_s)
                 ? base_qps * overload
                 : base_qps;
    case ScheduleKind::kStep:
      return t >= step_at_s ? base_qps * overload : base_qps;
  }
  return base_qps;
}

double ArrivalSchedule::peak_qps() const noexcept {
  return kind == ScheduleKind::kConstant ? base_qps : base_qps * overload;
}

ArrivalSchedule make_schedule(ScheduleKind kind, double base_qps,
                              double overload, double horizon_s) {
  if (!(base_qps > 0.0) || !std::isfinite(base_qps))
    throw std::invalid_argument("arrival rate must be finite and > 0");
  if (!(overload >= 1.0) || !(overload <= 100.0))
    throw std::invalid_argument("overload factor must be in [1, 100]");
  if (!(horizon_s > 0.0) || !std::isfinite(horizon_s))
    throw std::invalid_argument("schedule horizon must be finite and > 0");
  ArrivalSchedule s;
  s.kind = kind;
  s.base_qps = base_qps;
  s.overload = overload;
  s.diurnal_period_s = std::min(86400.0, horizon_s);
  s.flash_start_s = 0.4 * horizon_s;
  s.flash_duration_s = 0.2 * horizon_s;
  s.step_at_s = 0.5 * horizon_s;
  return s;
}

}  // namespace dsf::load
