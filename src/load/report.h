#pragma once

// Shared serialization of one open-loop run's LoadStats: the same field
// set backs the `load` object in dsf_sim's JSON output, every point of
// bench_load_sweep's dsf-load-sweep-v1 document, and the byte-identity
// determinism test (two same-seed runs must serialize identically).

#include "load/open_loop.h"
#include "metrics/json_emitter.h"

namespace dsf::load {

/// Writes the stats of one run as members of the currently open JSON
/// object: counters, conservation-relevant totals, rejection rate,
/// goodput (post-warmup completions / measured seconds), p50/p95/p99
/// sojourn in milliseconds, and queue-depth summary.  `measure_s` is the
/// post-warmup window length; pass 0 to skip the rate fields.
void write_load_stats(metrics::JsonEmitter& j, const LoadStats& s,
                      double measure_s);

}  // namespace dsf::load
