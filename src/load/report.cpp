#include "load/report.h"

namespace dsf::load {

void write_load_stats(metrics::JsonEmitter& j, const LoadStats& s,
                      double measure_s) {
  j.field("offered", s.offered);
  j.field("admitted", s.admitted);
  j.field("rejected", s.rejected);
  j.field("completed", s.completed);
  j.field("shed", s.shed);
  j.field("pending", s.pending);
  j.field("hits", s.hits);
  j.field("completed_after_warmup", s.completed_after_warmup);
  j.field("hits_after_warmup", s.hits_after_warmup);
  j.field("rejection_rate",
          s.offered ? static_cast<double>(s.rejected) /
                          static_cast<double>(s.offered)
                    : 0.0,
          6);
  if (measure_s > 0.0) {
    j.field("goodput_qps",
            static_cast<double>(s.completed_after_warmup) / measure_s, 4);
    j.field("hit_qps",
            static_cast<double>(s.hits_after_warmup) / measure_s, 4);
  }
  j.field("latency_p50_ms", s.sojourn_hist.quantile(0.50) * 1000.0, 3);
  j.field("latency_p95_ms", s.sojourn_hist.quantile(0.95) * 1000.0, 3);
  j.field("latency_p99_ms", s.sojourn_hist.quantile(0.99) * 1000.0, 3);
  j.field("latency_mean_ms", s.sojourn_s.mean() * 1000.0, 3);
  j.field("latency_max_ms", s.sojourn_s.max() * 1000.0, 3);
  j.field("queue_depth_mean", s.queue_depth.mean(), 4);
  j.field("queue_depth_peak", s.peak_queue_depth);
}

}  // namespace dsf::load
