#pragma once

// Trace-driven arrivals: instead of the built-in generator, an open-loop
// run can replay an external query stream from a whitespace-separated
// text file, one arrival per line:
//
//   time_s  peer  item
//
// `peer` and `item` may be -1 ("any"): the engine then draws them from
// the dedicated load RNG lane at injection time, so a trace can pin just
// the arrival times while leaving targeting to the workload model.
// Blank lines and lines starting with '#' are skipped.

#include <cstdint>
#include <string>
#include <vector>

namespace dsf::load {

/// Sentinel for "draw from the load lane at injection time".
inline constexpr std::uint64_t kAnyItem = ~std::uint64_t{0};
inline constexpr std::int64_t kAnyPeer = -1;

struct TraceArrival {
  double time_s = 0.0;
  std::int64_t peer = kAnyPeer;      ///< kAnyPeer = draw uniformly
  std::uint64_t item = kAnyItem;     ///< kAnyItem = draw from the workload
};

/// Parses one trace file.  Arrivals are returned sorted by time (stable,
/// so equal-time lines keep file order).  Throws std::invalid_argument
/// naming the offending line for malformed input (missing fields,
/// non-numeric tokens, negative or non-finite times), and
/// std::runtime_error when the file cannot be opened.
std::vector<TraceArrival> read_trace(const std::string& path);

/// Line-level parser (exposed for tests): parses `line`, returning false
/// for blank/comment lines, true with `out` filled for arrivals.
bool parse_trace_line(const std::string& line, TraceArrival* out);

}  // namespace dsf::load
