#include "load/trace_reader.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dsf::load {

bool parse_trace_line(const std::string& line, TraceArrival* out) {
  std::string::size_type first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') return false;
  std::istringstream in(line);
  double t = 0.0;
  long long peer = 0;
  long long item = 0;
  if (!(in >> t >> peer >> item))
    throw std::invalid_argument("expected `time_s peer item`");
  std::string rest;
  if (in >> rest)
    throw std::invalid_argument("trailing token: " + rest);
  if (!std::isfinite(t) || t < 0.0)
    throw std::invalid_argument("time must be finite and >= 0");
  if (peer < -1) throw std::invalid_argument("peer must be >= -1");
  if (item < -1) throw std::invalid_argument("item must be >= -1");
  out->time_s = t;
  out->peer = peer;
  out->item = item == -1 ? kAnyItem : static_cast<std::uint64_t>(item);
  return true;
}

std::vector<TraceArrival> read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open load trace: " + path);
  std::vector<TraceArrival> arrivals;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    TraceArrival a;
    try {
      if (parse_trace_line(line, &a)) arrivals.push_back(a);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(path + ":" + std::to_string(lineno) + ": " +
                                  e.what());
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const TraceArrival& a, const TraceArrival& b) {
                     return a.time_s < b.time_s;
                   });
  return arrivals;
}

}  // namespace dsf::load
