#pragma once

// Arrival-rate schedules for the open-loop load generator: the offered
// query rate as a deterministic function of simulated time.  Arrivals are
// drawn as a non-homogeneous Poisson process by thinning — candidate
// points at peak_qps(), each accepted with probability rate_at(t)/peak —
// so one schedule shape is one pure function here and zero special cases
// in the engine's arrival loop.

#include <cstdint>
#include <string>

namespace dsf::load {

/// The built-in offered-load shapes.  `overload` below is the peak
/// multiplier applied by the non-constant shapes (the 2–10x band of the
/// saturation experiments).
enum class ScheduleKind : std::uint8_t {
  kConstant,  ///< flat at base_qps for the whole run
  kDiurnal,   ///< sinusoid: trough base_qps, crest base_qps * overload
  kFlash,     ///< flash crowd: base_qps, spiking inside one window
  kStep,      ///< step overload: base_qps, then base_qps * overload forever
};

/// Parses a schedule name ("constant", "diurnal", "flash", "step");
/// throws std::invalid_argument for anything else.
ScheduleKind parse_schedule(const std::string& name);
const char* schedule_name(ScheduleKind kind) noexcept;

/// One fully specified arrival schedule.  Build via make_schedule so the
/// shape windows default to sensible fractions of the horizon.
struct ArrivalSchedule {
  ScheduleKind kind = ScheduleKind::kConstant;
  double base_qps = 0.0;  ///< baseline aggregate arrival rate
  double overload = 4.0;  ///< peak multiplier (flash / step / diurnal crest)
  /// Shape geometry (seconds).  The diurnal wave completes one full
  /// period over `diurnal_period_s`; the flash crowd occupies
  /// [flash_start_s, flash_start_s + flash_duration_s); the step fires at
  /// step_at_s.
  double diurnal_period_s = 86400.0;
  double flash_start_s = 0.0;
  double flash_duration_s = 0.0;
  double step_at_s = 0.0;

  /// Instantaneous offered rate at time `t` (queries per second).
  double rate_at(double t) const noexcept;
  /// Least upper bound of rate_at over the run, used as the thinning
  /// envelope.
  double peak_qps() const noexcept;
};

/// Builds a schedule whose shape windows are derived from the horizon:
/// the diurnal wave spans min(24 h, horizon) so short runs still see a
/// full crest, the flash crowd occupies the [40%, 60%) slice of the run,
/// and the step fires at mid-run.  Throws std::invalid_argument for a
/// non-positive/non-finite base rate, an overload outside [1, 100], or a
/// non-positive horizon.
ArrivalSchedule make_schedule(ScheduleKind kind, double base_qps,
                              double overload, double horizon_s);

}  // namespace dsf::load
