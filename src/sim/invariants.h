#pragma once

// InvariantChecker: continuous assertions over the overlay engine's trace
// stream, plus end-of-run structural and accounting audits.  Attach one
// via OverlayEngine::attach_checker BEFORE run(); the engine then routes
// every transmission through its traced paths (still zero RNG draws when
// the fault plan is empty) and the checker asserts, as events happen:
//
//   * message conservation — per type, delivered + dropped never exceeds
//     sent; sent - delivered - dropped is the (non-negative) in-flight
//     count, reconciled against the MessageLedger by check_ledger();
//   * TTL monotonicity — within one search (begin_faulty_search sets the
//     context), query TTLs stay in [1, max_hops] and never increase in
//     BFS trace order;
//   * no delivery to the dead — a copy addressed to a crashed peer must
//     be dropped, never delivered;
//   * overlay sanity (check_overlay) — no self-loops, no duplicate
//     entries, no out-of-range ids, and out/in agreement per §3.1.
//
// Violations are recorded (capped at kMaxRecorded, counted exactly) and
// summarized by report().  The seeded-violation tests in
// tests/sim/invariant_test.cpp feed the checker hand-crafted bad traces
// and tampered ledgers to prove each class is actually detected.

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/flood_search.h"
#include "core/query_plane.h"
#include "core/relations.h"
#include "net/message.h"
#include "net/node_id.h"
#include "sim/adversary.h"
#include "sim/engine.h"

namespace dsf::sim {

/// One detected violation: which invariant class, when, and what happened.
struct InvariantViolation {
  std::string invariant;  ///< "conservation", "ttl", "dead-delivery",
                          ///< "overlay", "ledger", "admission", "abuse",
                          ///< or "scheme"
  std::string detail;
  double time_s = 0.0;
};

class InvariantChecker {
 public:
  /// Recorded-violation cap; everything past it is counted but not stored.
  static constexpr std::size_t kMaxRecorded = 64;

  /// Resets the TTL context for one search (or one iterative-deepening
  /// cycle) whose queries carry at most `max_ttl` remaining hops.
  void on_search_begin(int max_ttl) noexcept {
    search_max_ttl_ = max_ttl;
    last_query_ttl_ = max_ttl;
  }

  /// Consumes one engine trace record.
  void on_trace(const TraceEvent& ev) {
    ++events_;
    last_time_s_ = ev.time_s;
    const auto t = static_cast<std::size_t>(ev.type);
    switch (ev.kind) {
      case TraceKind::kSend:
        ++sent_[t];
        if (ev.abuse) ++abuse_sent_[t];
        if (ev.type == net::MessageType::kQuery && ev.ttl >= 0 &&
            search_max_ttl_ >= 0)
          check_query_ttl(ev);
        break;
      case TraceKind::kDeliver:
        ++delivered_[t];
        if (ev.abuse) ++abuse_delivered_[t];
        check_conservation(ev);
        if (is_dead(ev.to))
          violate("dead-delivery",
                  std::string(net::to_string(ev.type)) +
                      " delivered to crashed peer " + std::to_string(ev.to),
                  ev.time_s);
        break;
      case TraceKind::kDrop:
        ++dropped_[t];
        if (ev.abuse) ++abuse_dropped_[t];
        check_conservation(ev);
        break;
      case TraceKind::kCrash:
        ++crashes_;
        mark_dead(ev.from);
        break;
    }
  }

  /// Audits one node's raw adjacency lists: self-loops, duplicate entries,
  /// out-of-range ids.  check_overlay calls this per node; tests call it
  /// directly with crafted lists.
  void check_adjacency(net::NodeId node, std::span<const net::NodeId> out,
                       std::span<const net::NodeId> in,
                       std::size_t num_nodes) {
    check_list(node, out, num_nodes, "outgoing");
    check_list(node, in, num_nodes, "incoming");
  }

  /// Audits the whole neighbor table: per-node adjacency sanity plus the
  /// §3.1 consistency requirement (every outgoing entry mirrored by the
  /// target's incoming list).  Dangling entries pointing AT a crashed peer
  /// are legal — both sides of each link still record it — which is
  /// exactly what makes ungraceful crashes interesting.  Templated over
  /// the table type: the reference core::NeighborTable and the compact
  /// million-peer table are audited identically.
  template <typename Table>
  void check_overlay(const Table& table) {
    for (net::NodeId i = 0; i < table.size(); ++i) {
      const auto& l = table.lists(i);
      check_adjacency(i, l.out(), l.in(), table.size());
    }
    if (!table.consistent())
      violate("overlay",
              "neighbor table inconsistent: some outgoing entry has no "
              "matching incoming entry",
              last_time_s_);
  }

  /// Reconciles the traced per-type fates against the engine's ledger:
  /// the ledger's delivered/dropped counters must equal the traced ones,
  /// and for every type in `exact_sent` the traced send count must equal
  /// the ledger's sent count.  (Exact send reconciliation is opt-in
  /// because some scenarios account messages the engine never transmits
  /// individually — e.g. digest exchanges bulk-counted on link formation —
  /// and iterative deepening bulk-counts only its final cycle's replies.)
  void check_ledger(const MessageLedger& ledger,
                    std::initializer_list<net::MessageType> exact_sent = {}) {
    for (int i = 0; i < net::kNumMessageTypes; ++i) {
      const auto t = static_cast<net::MessageType>(i);
      if (delivered_[i] != ledger.delivered(t))
        violate("ledger",
                std::string(net::to_string(t)) + ": traced " +
                    std::to_string(delivered_[i]) +
                    " deliveries but the ledger recorded " +
                    std::to_string(ledger.delivered(t)),
                last_time_s_);
      if (dropped_[i] != ledger.dropped(t))
        violate("ledger",
                std::string(net::to_string(t)) + ": traced " +
                    std::to_string(dropped_[i]) +
                    " drops but the ledger recorded " +
                    std::to_string(ledger.dropped(t)),
                last_time_s_);
      if (delivered_[i] + dropped_[i] > sent_[i])
        violate("conservation",
                std::string(net::to_string(t)) +
                    ": delivered + dropped exceeds sent at end of run",
                last_time_s_);
    }
    for (net::MessageType t : exact_sent) {
      const auto i = static_cast<std::size_t>(t);
      if (sent_[i] != ledger.stats().total(t))
        violate("ledger",
                std::string(net::to_string(t)) + ": traced " +
                    std::to_string(sent_[i]) + " sends but the ledger shows " +
                    std::to_string(ledger.stats().total(t)),
                last_time_s_);
    }
  }

  /// Certifies the open-loop admission accounting at end of run: every
  /// offered arrival was either admitted or rejected, and every admitted
  /// query ended the run completed, shed, or still pending.  Call with
  /// OverlayEngine::load_stats() after run (no-op on all-zero stats, so
  /// closed-loop certification paths can call it unconditionally).
  void check_admission(const load::LoadStats& s) {
    if (s.admitted + s.rejected != s.offered)
      violate("admission",
              "offered (" + std::to_string(s.offered) +
                  ") != admitted (" + std::to_string(s.admitted) +
                  ") + rejected (" + std::to_string(s.rejected) + ")",
              last_time_s_);
    if (s.completed + s.shed + s.pending != s.admitted)
      violate("admission",
              "admitted (" + std::to_string(s.admitted) +
                  ") != completed (" + std::to_string(s.completed) +
                  ") + shed (" + std::to_string(s.shed) + ") + pending (" +
                  std::to_string(s.pending) + ")",
              last_time_s_);
    if (s.hits > s.completed)
      violate("admission",
              "hits (" + std::to_string(s.hits) + ") exceed completions (" +
                  std::to_string(s.completed) + ")",
              last_time_s_);
  }

  /// Certifies one search outcome against its query spec (the ranked
  /// query plane's per-query contract).  Exact-match outcomes must carry
  /// no scores and no pruning (nothing prunes a flood); ranked outcomes
  /// must respect the k bound with scores positive and sorted
  /// best-first; similarity outcomes must clear the threshold on every
  /// hit.  Scenarios call this per search when a checker is attached —
  /// it is cheap (one pass over the hit list) but per-query, so the
  /// engine gates it behind fault_layer_active().
  void check_search_outcome(const core::QuerySpec& spec,
                            const core::SearchOutcome& out) {
    switch (spec.query_class) {
      case core::QueryClass::kExactMatch:
        if (out.pruned_subtrees != 0)
          violate("scheme",
                  "exact-match search pruned " +
                      std::to_string(out.pruned_subtrees) +
                      " subtree(s) — nothing bounds a flood",
                  last_time_s_);
        for (const core::SearchHit& h : out.hits)
          if (h.score != 0.0) {
            violate("scheme",
                    "exact-match hit at node " + std::to_string(h.node) +
                        " carries score " + std::to_string(h.score),
                    last_time_s_);
            break;
          }
        break;
      case core::QueryClass::kTopKRanked: {
        if (out.hits.size() > spec.k)
          violate("scheme",
                  "top-k outcome returned " +
                      std::to_string(out.hits.size()) + " hits for k = " +
                      std::to_string(spec.k),
                  last_time_s_);
        double prev = std::numeric_limits<double>::infinity();
        for (const core::SearchHit& h : out.hits) {
          if (h.score <= 0.0) {
            violate("scheme",
                    "ranked hit at node " + std::to_string(h.node) +
                        " has non-positive score " + std::to_string(h.score),
                    last_time_s_);
            break;
          }
          if (h.score > prev) {
            violate("scheme",
                    "ranked hits out of order: score " +
                        std::to_string(h.score) + " after " +
                        std::to_string(prev),
                    last_time_s_);
            break;
          }
          prev = h.score;
        }
        break;
      }
      case core::QueryClass::kSimilarity:
        for (const core::SearchHit& h : out.hits)
          if (h.score < spec.sim_threshold) {
            violate("scheme",
                    "similarity hit at node " + std::to_string(h.node) +
                        " scored " + std::to_string(h.score) +
                        ", below threshold " +
                        std::to_string(spec.sim_threshold),
                    last_time_s_);
            break;
          }
        break;
    }
  }

  /// Certifies the adversary layer's abuse attribution at end of run:
  /// traced abuse fates reconcile exactly against the abuse ledger (both
  /// are mirrored at the same sites), abuse traffic is conserved within
  /// the blast radius (delivered + dropped never exceeds sent), the
  /// attribution is a subset of the total traffic (per type, counts and
  /// bytes), hits never exceed sprayed queries, and nothing is attributed
  /// when no abuse ran.  No-op-clean on a disabled layer (all-zero stats
  /// and an empty abuse ledger), so certification paths can call it
  /// unconditionally.
  void check_abuse(const AdversaryStats& stats,
                   const MessageLedger& abuse_ledger,
                   const MessageLedger& ledger) {
    for (int i = 0; i < net::kNumMessageTypes; ++i) {
      const auto t = static_cast<net::MessageType>(i);
      if (abuse_delivered_[i] != abuse_ledger.delivered(t))
        violate("abuse",
                std::string(net::to_string(t)) + ": traced " +
                    std::to_string(abuse_delivered_[i]) +
                    " abuse deliveries but the abuse ledger recorded " +
                    std::to_string(abuse_ledger.delivered(t)),
                last_time_s_);
      if (abuse_dropped_[i] != abuse_ledger.dropped(t))
        violate("abuse",
                std::string(net::to_string(t)) + ": traced " +
                    std::to_string(abuse_dropped_[i]) +
                    " abuse drops but the abuse ledger recorded " +
                    std::to_string(abuse_ledger.dropped(t)),
                last_time_s_);
      if (abuse_delivered_[i] + abuse_dropped_[i] > abuse_sent_[i])
        violate("abuse",
                std::string(net::to_string(t)) +
                    ": abuse delivered + dropped exceeds abuse sent",
                last_time_s_);
      if (abuse_sent_[i] > sent_[i])
        violate("abuse",
                std::string(net::to_string(t)) +
                    ": traced abuse sends exceed total sends",
                last_time_s_);
      if (abuse_ledger.stats().total(t) > ledger.stats().total(t))
        violate("abuse",
                std::string(net::to_string(t)) +
                    ": abuse-ledger sends (" +
                    std::to_string(abuse_ledger.stats().total(t)) +
                    ") exceed the run ledger's (" +
                    std::to_string(ledger.stats().total(t)) + ")",
                last_time_s_);
      if (abuse_ledger.bytes(t) > ledger.bytes(t))
        violate("abuse",
                std::string(net::to_string(t)) +
                    ": abuse-ledger bytes exceed the run ledger's",
                last_time_s_);
    }
    if (stats.abuse_hits > stats.abuse_queries)
      violate("abuse",
              "abuse hits (" + std::to_string(stats.abuse_hits) +
                  ") exceed sprayed queries (" +
                  std::to_string(stats.abuse_queries) + ")",
              last_time_s_);
    if (stats.abuse_queries == 0 && stats.abusers == 0 &&
        abuse_ledger.stats().total() != 0)
      violate("abuse",
              "abuse ledger counted " +
                  std::to_string(abuse_ledger.stats().total()) +
                  " message(s) but no abuser ever sprayed",
              last_time_s_);
  }

  /// Audits the designated abusers' overlay entries: per-abuser adjacency
  /// sanity plus a mirror audit — every link an abuser still holds must be
  /// mutually recorded (a dangling out-entry with no matching in-entry at
  /// the target indicates a broken eviction path, not a contained abuser).
  /// Templated like check_overlay so the reference and compact tables are
  /// audited identically.
  template <typename Table>
  void check_abuser_overlay(const Table& table,
                            std::span<const net::NodeId> abusers) {
    for (net::NodeId a : abusers) {
      if (a >= table.size()) {
        violate("abuse",
                "abuser id " + std::to_string(a) + " out of range (" +
                    std::to_string(table.size()) + " peers)",
                last_time_s_);
        continue;
      }
      const auto& l = table.lists(a);
      check_adjacency(a, l.out(), l.in(), table.size());
      for (net::NodeId v : l.out()) {
        if (v >= table.size()) continue;  // reported by check_adjacency
        const auto& lv = table.lists(v);
        bool mirrored = false;
        for (net::NodeId w : lv.in())
          if (w == a) {
            mirrored = true;
            break;
          }
        if (!mirrored)
          violate("abuse",
                  "abuser " + std::to_string(a) + " lists neighbor " +
                      std::to_string(v) +
                      " but is absent from its incoming list (half-evicted "
                      "link)",
                  last_time_s_);
      }
    }
  }

  /// --- counters ---------------------------------------------------------
  std::uint64_t sent(net::MessageType t) const noexcept {
    return sent_[static_cast<std::size_t>(t)];
  }
  std::uint64_t delivered(net::MessageType t) const noexcept {
    return delivered_[static_cast<std::size_t>(t)];
  }
  std::uint64_t dropped(net::MessageType t) const noexcept {
    return dropped_[static_cast<std::size_t>(t)];
  }
  /// Copies sent but not yet resolved (negative only under violation).
  std::int64_t in_flight(net::MessageType t) const noexcept {
    const auto i = static_cast<std::size_t>(t);
    return static_cast<std::int64_t>(sent_[i]) -
           static_cast<std::int64_t>(delivered_[i]) -
           static_cast<std::int64_t>(dropped_[i]);
  }
  std::uint64_t events_seen() const noexcept { return events_; }
  std::uint64_t crashes_seen() const noexcept { return crashes_; }

  /// Abuse-tagged subsets of the traced counters (zero with the layer off).
  std::uint64_t abuse_sent(net::MessageType t) const noexcept {
    return abuse_sent_[static_cast<std::size_t>(t)];
  }
  std::uint64_t abuse_delivered(net::MessageType t) const noexcept {
    return abuse_delivered_[static_cast<std::size_t>(t)];
  }
  std::uint64_t abuse_dropped(net::MessageType t) const noexcept {
    return abuse_dropped_[static_cast<std::size_t>(t)];
  }

  /// --- verdict ----------------------------------------------------------
  bool ok() const noexcept { return total_violations_ == 0; }
  std::uint64_t total_violations() const noexcept { return total_violations_; }
  const std::vector<InvariantViolation>& violations() const noexcept {
    return violations_;
  }

  /// Human-readable summary of everything detected (empty-ish when ok).
  std::string report() const {
    std::string r =
        "invariant violations: " + std::to_string(total_violations_) + "\n";
    for (const auto& v : violations_)
      r += "  [" + v.invariant + "] t=" + std::to_string(v.time_s) + "s " +
           v.detail + "\n";
    if (total_violations_ > violations_.size())
      r += "  ... " +
           std::to_string(total_violations_ - violations_.size()) +
           " more suppressed\n";
    return r;
  }

 private:
  void violate(const char* invariant, std::string detail, double time_s) {
    ++total_violations_;
    if (violations_.size() < kMaxRecorded)
      violations_.push_back({invariant, std::move(detail), time_s});
  }

  void check_conservation(const TraceEvent& ev) {
    const auto t = static_cast<std::size_t>(ev.type);
    if (delivered_[t] + dropped_[t] > sent_[t])
      violate("conservation",
              std::string(net::to_string(ev.type)) +
                  ": delivered + dropped exceeds sent (" +
                  std::to_string(delivered_[t]) + " + " +
                  std::to_string(dropped_[t]) + " > " +
                  std::to_string(sent_[t]) + ")",
              ev.time_s);
  }

  void check_query_ttl(const TraceEvent& ev) {
    if (ev.ttl < 1 || ev.ttl > search_max_ttl_) {
      violate("ttl",
              "query sent with ttl " + std::to_string(ev.ttl) +
                  " outside [1, " + std::to_string(search_max_ttl_) + "]",
              ev.time_s);
      return;
    }
    if (ev.ttl > last_query_ttl_) {
      violate("ttl",
              "query ttl increased from " + std::to_string(last_query_ttl_) +
                  " to " + std::to_string(ev.ttl) + " within one search",
              ev.time_s);
      return;
    }
    last_query_ttl_ = ev.ttl;
  }

  void check_list(net::NodeId node, std::span<const net::NodeId> list,
                  std::size_t num_nodes, const char* which) {
    for (std::size_t a = 0; a < list.size(); ++a) {
      if (list[a] == node)
        violate("overlay",
                "node " + std::to_string(node) + " has a self-loop in its " +
                    which + " list",
                last_time_s_);
      if (list[a] >= num_nodes)
        violate("overlay",
                "node " + std::to_string(node) + " has out-of-range id " +
                    std::to_string(list[a]) + " in its " + which + " list",
                last_time_s_);
      for (std::size_t b = a + 1; b < list.size(); ++b)
        if (list[a] == list[b])
          violate("overlay",
                  "node " + std::to_string(node) + " lists neighbor " +
                      std::to_string(list[a]) + " twice (" + which + ")",
                  last_time_s_);
    }
  }

  bool is_dead(net::NodeId u) const noexcept {
    return u < dead_.size() && dead_[u] != 0;
  }
  void mark_dead(net::NodeId u) {
    if (u == net::kInvalidNode) return;
    if (u >= dead_.size()) dead_.resize(u + 1, 0);
    dead_[u] = 1;
  }

  std::uint64_t sent_[net::kNumMessageTypes] = {};
  std::uint64_t delivered_[net::kNumMessageTypes] = {};
  std::uint64_t dropped_[net::kNumMessageTypes] = {};
  std::uint64_t abuse_sent_[net::kNumMessageTypes] = {};
  std::uint64_t abuse_delivered_[net::kNumMessageTypes] = {};
  std::uint64_t abuse_dropped_[net::kNumMessageTypes] = {};
  std::vector<char> dead_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t crashes_ = 0;
  double last_time_s_ = 0.0;
  int search_max_ttl_ = -1;
  int last_query_ttl_ = -1;
};

}  // namespace dsf::sim
