#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/unreachable.h"
#include "des/distributions.h"
#include "obs/process_stats.h"
#include "sim/invariants.h"

namespace dsf::sim {

RngLanes make_lanes(des::Rng& master, RngLayout layout) {
  RngLanes lanes;
  switch (layout) {
    case RngLayout::kCompact:
      // Historical compact layout: exactly one split (the delay lane);
      // everything else draws from the master stream.
      lanes.delay = master.split();
      return lanes;
    case RngLayout::kFourLane:
      // Historical gnutella layout: four splits in this exact order.
      lanes.topo = master.split();
      lanes.session = master.split();
      lanes.query = master.split();
      lanes.delay = master.split();
      return lanes;
  }
  core::unreachable_enum("sim::RngLayout");
}

std::uint64_t default_message_bytes(net::MessageType t) {
  // Representative wire sizes modeled on the Gnutella 0.4 descriptor
  // family: header (23 B) plus typical payloads.  Exploration replies
  // carry statistics/digests and dominate.
  switch (t) {
    case net::MessageType::kQuery:
      return 82;
    case net::MessageType::kQueryReply:
      return 104;
    case net::MessageType::kPing:
      return 23;
    case net::MessageType::kPong:
      return 37;
    case net::MessageType::kExploreQuery:
      return 64;
    case net::MessageType::kExploreReply:
      return 512;
    case net::MessageType::kInvitation:
      return 48;
    case net::MessageType::kInvitationReply:
      return 32;
    case net::MessageType::kEviction:
      return 32;
    case net::MessageType::kCount_:
      break;
  }
  core::unreachable_enum("net::MessageType");
}

namespace {
/// Fixed stream salt for the open-loop load lane ("load" in ASCII).  Like
/// the fault lane, it is hashed from the scenario seed — never split off
/// the master stream — so arming the layer cannot perturb the baseline
/// trajectory's draws.
constexpr std::uint64_t kLoadStream = 0x6c6f'6164'00000000ULL;
}  // namespace

OverlayEngine::OverlayEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)),
      master_rng_(cfg_.seed),
      lanes_(make_lanes(master_rng_, cfg_.rng_layout)),
      delay_(cfg_.num_nodes, master_rng_, cfg_.delay_params),
      overlay_(cfg_.num_nodes, cfg_.relation, cfg_.out_capacity,
               cfg_.in_capacity),
      stamps_(cfg_.num_nodes),
      fault_rng_(make_fault_lane(cfg_.seed)),
      dead_(cfg_.num_nodes, 0),
      load_rng_(des::hash_seed(cfg_.seed, kLoadStream)) {
  // Unused lanes alias the master stream so compact-layout scenarios keep
  // drawing from the sequence they always did.
  const bool four = cfg_.rng_layout == RngLayout::kFourLane;
  topo_ = four ? &lanes_.topo : &master_rng_;
  session_ = four ? &lanes_.session : &master_rng_;
  query_ = four ? &lanes_.query : &master_rng_;
}

namespace {
/// Fixed stream salts for the per-shard RNG derivations.  Like the fault
/// lane, shard lanes are hashed from the scenario seed — never split off
/// the master stream — so configuring shards cannot perturb the serial
/// trajectory's draws.
constexpr std::uint64_t kShardMasterStream = 0x736872'6400000000ULL;
constexpr std::uint64_t kShardFaultStream = 0x736872'6446000000ULL;

const char* kAdversaryShardError =
    ": the adversary layer is unsupported with --shards > 1 (roles, the"
    " abuse ledger and the adversary lane are serial state); run with"
    " --shards 1";
const char* kAdversarySnapshotError =
    ": the adversary layer and snapshots are mutually exclusive (the"
    " adversary lane and abuse attribution are not checkpointed)";
const char* kCaptureShardError =
    ": --capture-trace is unsupported with --shards > 1 (arrival capture"
    " is serial state); run with --shards 1";
const char* kCaptureSnapshotError =
    ": --capture-trace and snapshots are mutually exclusive (captured"
    " arrivals are not checkpointed, so a resumed capture would be"
    " incomplete)";
}  // namespace

void OverlayEngine::set_shards(std::uint32_t n, double window_s) {
  if (n == 0)
    throw std::invalid_argument(cfg_.name + ": --shards must be >= 1");
  if (n > num_nodes())
    throw std::invalid_argument(
        cfg_.name + ": --shards (" + std::to_string(n) +
        ") exceeds the peer count (" + std::to_string(num_nodes()) + ")");
  if (n == 1) return;  // the serial path stays untouched (byte-identity)
  if (save_requested_ || resumed_)
    throw std::invalid_argument(
        cfg_.name +
        ": snapshots are unsupported with --shards > 1 (per-shard clocks and "
        "RNG lanes cannot be reconciled with the serial checkpoint); run "
        "with --shards 1");
  if (load_opts_.enabled)
    throw std::invalid_argument(
        cfg_.name +
        ": open-loop injection is unsupported with --shards > 1 (admission "
        "queues and the load lane are serial state); run with --shards 1");
  if (adversary_plan_.enabled())
    throw std::invalid_argument(cfg_.name + kAdversaryShardError);
  if (capture_armed_)
    throw std::invalid_argument(cfg_.name + kCaptureShardError);
  if (sim_.pending() > 0 || sim_.now() > 0.0 || sharded_)
    throw std::logic_error(
        cfg_.name + ": set_shards must run before anything is scheduled");

  if (window_s <= 0.0) window_s = cfg_.delay_params.floor_s;
  sharded_ = std::make_unique<des::ShardedSimulator>(n, window_s);
  shard_block_ =
      static_cast<net::NodeId>((num_nodes() + n - 1) / n);
  shard_ctx_.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s)
    shard_ctx_.emplace_back(
        des::Rng(des::hash_seed(cfg_.seed, kShardMasterStream + s)),
        cfg_.rng_layout,
        make_fault_lane(des::hash_seed(cfg_.seed, kShardFaultStream + s)),
        num_nodes());
}

void OverlayEngine::merge_shard_ledgers() {
  for (ShardContext& c : shard_ctx_) {
    ledger_ += c.ledger;
    c.ledger = MessageLedger();  // fold exactly once per run
  }
}

std::pair<std::uint64_t, std::uint64_t> OverlayEngine::ledger_totals()
    const noexcept {
  std::uint64_t messages = ledger_.stats().total();
  std::uint64_t bytes = ledger_.total_bytes();
  for (const ShardContext& c : shard_ctx_) {
    messages += c.ledger.stats().total();
    bytes += c.ledger.total_bytes();
  }
  return {messages, bytes};
}

void OverlayEngine::schedule_every(double first_delay_s, double period_s,
                                   std::function<void()> fn) {
  if (sharded_) {
    // Global periodic in a parallel run: shard 0 hosts the tick and the
    // body runs under the exclusive section, since by definition it looks
    // at state owned by every shard.
    auto guarded = std::make_shared<std::function<void()>>(
        [this, body = std::move(fn)] {
          const Section lock = exclusive_section();
          body();
        });
    schedule_periodic_for(0, first_delay_s, period_s, std::move(guarded));
    return;
  }
  const std::size_t idx = register_periodic(period_s, std::move(fn));
  start_periodic(idx, first_delay_s);
}

void OverlayEngine::schedule_every_for(net::NodeId owner,
                                       double first_delay_s, double period_s,
                                       std::function<void()> fn) {
  if (!sharded_) {
    schedule_every(first_delay_s, period_s, std::move(fn));
    return;
  }
  schedule_periodic_for(owner, first_delay_s, period_s,
                        std::make_shared<std::function<void()>>(std::move(fn)));
}

std::size_t OverlayEngine::register_periodic(double period_s,
                                             std::function<void()> body) {
  periodics_.push_back(Periodic{period_s, std::move(body)});
  return periodics_.size() - 1;
}

void OverlayEngine::start_periodic(std::size_t idx, double first_delay_s) {
  // Same single insertion point as the old trailing-self-reschedule
  // recursion, so a run that never snapshots replays byte-identically.
  const des::EventId id =
      sim_.schedule_in(first_delay_s, [this, idx] { run_periodic_tick(idx); });
  if (snap_track_) note_keyed(id.seq, kKeyedPeriodic, idx, 0);
}

void OverlayEngine::run_periodic_tick(std::size_t idx) {
  periodics_[idx].body();
  start_periodic(idx, periodics_[idx].period_s);
}

void OverlayEngine::schedule_periodic_for(
    net::NodeId owner, double delay_s, double period_s,
    std::shared_ptr<std::function<void()>> fn) {
  // The reschedule runs from the owner's own handler, so the direct
  // same-shard insertion of schedule_self is always legal here.
  schedule_self(owner, delay_s, [this, owner, period_s, fn] {
    (*fn)();
    schedule_periodic_for(owner, period_s, period_s, fn);
  });
}

void OverlayEngine::sample_traffic() {
  TrafficSample s;
  s.time_s = sharded_ ? next_traffic_sample_s_ : sim_.now();
  const auto [messages, bytes] = ledger_totals();
  s.messages = messages;
  s.bytes = bytes;
  traffic_samples_.push_back(s);
  if (traffic_series_) {
    // Per-bucket increments: the series holds new messages per period.
    const std::uint64_t prev = traffic_samples_.size() > 1
                                   ? traffic_samples_.rbegin()[1].messages
                                   : 0;
    traffic_series_->add(s.time_s, s.messages - prev);
  }
}

void OverlayEngine::on_barrier(double wend) {
  // Every worker is parked: per-shard ledgers and simulator counters are
  // safe to read.  Samples fire at their nominal period marks, which the
  // window grid may overshoot — the sample carries the nominal time so
  // the series bucketing matches the serial run's.
  if (traffic_sample_period_s_ > 0.0) {
    while (next_traffic_sample_s_ <= wend) {
      sample_traffic();
      next_traffic_sample_s_ += traffic_sample_period_s_;
    }
  }
  if (heartbeat_period_s_ > 0.0 && obs_ != nullptr) {
    while (next_heartbeat_s_ <= wend) {
      emit_heartbeat();
      next_heartbeat_s_ += heartbeat_period_s_;
    }
  }
}

std::uint64_t OverlayEngine::run_until_horizon() {
  if (sharded_) {
    if (crash_model_.enabled())
      throw std::invalid_argument(
          cfg_.name +
          ": CrashModel is unsupported with --shards > 1 (crash-time event"
          " cancellation cannot cross shard queues safely); run crashes "
          "with --shards 1");
    if (traffic_sample_period_s_ > 0.0) {
      traffic_series_.emplace(traffic_sample_period_s_);
      next_traffic_sample_s_ = traffic_sample_period_s_;
    }
    if (heartbeat_period_s_ > 0.0 && obs_ != nullptr) {
      heartbeat_wall_start_s_ =
          std::chrono::duration<double>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      next_heartbeat_s_ = heartbeat_period_s_;
    }
    sharded_->set_barrier_hook([this](double wend) { on_barrier(wend); });
    const std::uint64_t executed = sharded_->run_until(horizon_s());
    merge_shard_ledgers();
    if (bootstrap_underfills_ > 0 && !underfill_reported_) {
      underfill_reported_ = true;
      warn(cfg_.name + ": " + std::to_string(bootstrap_underfills_) +
           " bootstrap fill(s) exhausted the attempt budget before "
           "reaching the target degree");
    }
    return executed;
  }
  // Engine periodics register on fresh and resumed runs alike (identical
  // indices); only fresh runs draw start offsets and schedule first ticks.
  if (traffic_sample_period_s_ > 0.0) {
    if (!traffic_series_) traffic_series_.emplace(traffic_sample_period_s_);
    const std::size_t idx = register_periodic(traffic_sample_period_s_,
                                              [this] { sample_traffic(); });
    if (!resumed_) start_periodic(idx, traffic_sample_period_s_);
  }
  if (heartbeat_period_s_ > 0.0 && obs_ != nullptr) {
    heartbeat_wall_start_s_ =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    const std::size_t idx =
        register_periodic(heartbeat_period_s_, [this] { emit_heartbeat(); });
    if (!resumed_) start_periodic(idx, heartbeat_period_s_);
  }
  if (!resumed_ || (crash_model_.enabled() && !saved_crash_armed_)) {
    // Fresh runs start the crash process as configured.  A resumed run
    // normally inherits the saved run's crash tick through event replay —
    // but a warm-start fork arming a crash model the saved run did not
    // have gets no tick from the file, so start the process here, from
    // the restored clock (the fault lane was untouched by the saved run).
    schedule_crash_process();
  }
  arm_adversary();  // zero draws, zero events when the plan is disabled
  if (load_opts_.enabled) arm_open_loop();
  replay_restored_events();
  if (save_requested_) {
    // Segmented horizon: run to the boundary, checkpoint, continue.  After
    // run_until(T) every pending event is strictly later than T and no
    // callback is mid-flight, so T is a clean cut; the second segment then
    // executes the exact events the unsegmented run would.
    save_requested_ = false;
    sim_.run_until(std::min(save_at_s_, horizon_s()));
    save_snapshot(save_path_);
  }
  sim_.run_until(horizon_s());
  if (load_opts_.enabled) {
    std::uint64_t pending = 0;
    for (const load::PeerQueue& q : load_queues_) pending += q.depth();
    load_stats_.pending = pending;
  }
  if (capture_armed_) write_capture_file();
  if (bootstrap_underfills_ > 0 && !underfill_reported_) {
    underfill_reported_ = true;
    warn(cfg_.name + ": " + std::to_string(bootstrap_underfills_) +
         " bootstrap fill(s) exhausted the attempt budget before reaching "
         "the target degree");
  }
  // Lifetime count, not this call's: a resumed run restores the executed
  // counter at the boundary, so reported event totals stay continuous with
  // the straight-through run.
  return sim_.executed();
}

void OverlayEngine::warn(const std::string& message) {
  if (warning_sink_) {
    warning_sink_(message);
    return;
  }
  std::fprintf(stderr, "warning: %s\n", message.c_str());
}

// --- fault layer ----------------------------------------------------------

void OverlayEngine::begin_faulty_search(int max_ttl) {
  if (!checker_) return;
  std::unique_lock<std::mutex> lock(obs_mu_, std::defer_lock);
  if (sharded_) lock.lock();
  checker_->on_search_begin(max_ttl);
}

void OverlayEngine::trace_event(TraceKind kind, net::NodeId from,
                                net::NodeId to, net::MessageType type,
                                std::uint64_t bytes, int ttl,
                                std::uint64_t copies) {
  if (checker_ || trace_) {
    // Checker and hook are engine-global consumers; parallel shards feed
    // them under obs_mu_ (acquired, per the lock order, only while no
    // stripe is held).
    std::unique_lock<std::mutex> lock(obs_mu_, std::defer_lock);
    if (sharded_) lock.lock();
    for (std::uint64_t i = 0; i < copies; ++i) {
      const TraceEvent ev{kind,  now_s(), from, to, type, bytes, ttl,
                          abuse_ambient_};
      if (checker_) checker_->on_trace(ev);
      if (trace_) trace_(ev);
    }
  }
  if (obs_) {
    // One compact record covers all copies (Record.b carries the count).
    obs::RecordKind rk = obs::RecordKind::kSend;
    switch (kind) {
      case TraceKind::kSend: rk = obs::RecordKind::kSend; break;
      case TraceKind::kDeliver: rk = obs::RecordKind::kRecv; break;
      case TraceKind::kDrop: rk = obs::RecordKind::kDrop; break;
      case TraceKind::kCrash: rk = obs::RecordKind::kPeerCrash; break;
    }
    obs_record(rk, from, to, type, bytes, ttl, copies);
  }
}

void OverlayEngine::obs_record(obs::RecordKind kind, net::NodeId from,
                               net::NodeId to, net::MessageType type,
                               std::uint64_t bytes, int ttl,
                               std::uint64_t copies) {
  ShardContext* c = active_ctx();
  obs::Record r;
  r.time_s = now_s();
  r.span = c ? c->current_span : current_span_;
  r.shard = c ? static_cast<std::uint16_t>(
                    des::ShardedSimulator::current_shard() + 1)
              : 0;
  r.from = from;
  r.to = to;
  r.ttl = static_cast<std::int16_t>(std::clamp(ttl, -1, 32767));
  r.kind = kind;
  if (kind == obs::RecordKind::kPeerCrash) {
    r.span = 0;  // crashes belong to the run, not the ambient search
  } else {
    r.type = static_cast<std::uint8_t>(type);
    r.a = bytes;
    r.b = copies;
  }
  std::unique_lock<std::mutex> lock(obs_mu_, std::defer_lock);
  if (sharded_) lock.lock();
  obs_->record(r);
}

std::uint32_t OverlayEngine::obs_search_begin(net::NodeId initiator,
                                              int max_ttl,
                                              std::uint64_t item) {
  if (!obs_) return 0;
  ShardContext* c = active_ctx();
  const std::uint32_t span =
      next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
  (c ? c->current_span : current_span_) = span;
  obs::Record r;
  r.time_s = now_s();
  r.span = span;
  r.shard = c ? static_cast<std::uint16_t>(
                    des::ShardedSimulator::current_shard() + 1)
              : 0;
  r.from = initiator;
  r.to = net::kInvalidNode;
  r.ttl = static_cast<std::int16_t>(std::clamp(max_ttl, 0, 32767));
  r.kind = obs::RecordKind::kSearchBegin;
  r.a = item;
  std::unique_lock<std::mutex> lock(obs_mu_, std::defer_lock);
  if (sharded_) lock.lock();
  obs_->record(r);
  return span;
}

void OverlayEngine::obs_search_end(std::uint32_t span, net::NodeId initiator,
                                   std::uint64_t results, int first_hit_hop,
                                   double first_result_delay_s,
                                   double best_score) {
  if (span == 0 || !obs_) return;
  ShardContext* c = active_ctx();
  obs::Record r;
  r.time_s = now_s();
  r.span = span;
  r.shard = c ? static_cast<std::uint16_t>(
                    des::ShardedSimulator::current_shard() + 1)
              : 0;
  r.from = initiator;
  r.to = net::kInvalidNode;
  r.ttl = static_cast<std::int16_t>(std::clamp(first_hit_hop, -1, 32767));
  r.kind = obs::RecordKind::kSearchEnd;
  r.a = obs::Record::pack_results_score(results, best_score);
  r.b = obs::Record::pack_delay(first_result_delay_s);
  {
    std::unique_lock<std::mutex> lock(obs_mu_, std::defer_lock);
    if (sharded_) lock.lock();
    obs_->record(r);
  }
  std::uint32_t& ambient = c ? c->current_span : current_span_;
  if (ambient == span) ambient = 0;
}

void OverlayEngine::emit_heartbeat() {
  if (!obs_) return;
  const double wall_now_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const double wall_ms = (wall_now_s - heartbeat_wall_start_s_) * 1e3;
  obs::Record r;
  // Parallel heartbeats fire from the window barrier at their nominal
  // period mark, aggregating over all shard queues.
  r.time_s = sharded_ ? next_heartbeat_s_ : sim_.now();
  r.kind = obs::RecordKind::kHeartbeat;
  r.from = static_cast<std::uint32_t>(std::min<std::size_t>(
      sharded_ ? sharded_->pending() : sim_.pending(), UINT32_MAX));
  r.to = static_cast<std::uint32_t>(
      std::min(wall_ms, static_cast<double>(UINT32_MAX)));
  r.a = sharded_ ? sharded_->executed() : sim_.executed();
  r.b = obs::peak_rss_bytes();
  obs_->record(r);
}

core::TransmitResult OverlayEngine::transmit(net::MessageType type,
                                             net::NodeId from, net::NodeId to,
                                             int ttl) {
  FaultDecision d;
  if (!fault_plan_.empty()) d = fault_plan_.decide(type, now_s(), fault_lane());
  core::TransmitResult res;
  res.duplicate = d.duplicate;
  res.extra_delay_s = d.extra_delay_s;
  res.deliver = !d.drop && !node_dead(to);
  const std::uint64_t copies = d.duplicate ? 2 : 1;
  const std::uint64_t b = default_message_bytes(type);
  trace_event(TraceKind::kSend, from, to, type, b, ttl, copies);
  if (res.deliver) {
    ledger_ref().count_delivered(type, copies);
    if (abuse_ambient_) abuse_ledger_.count_delivered(type, copies);
    trace_event(TraceKind::kDeliver, from, to, type, b, ttl, copies);
  } else {
    ledger_ref().count_dropped(type, copies);
    if (abuse_ambient_) abuse_ledger_.count_dropped(type, copies);
    trace_event(TraceKind::kDrop, from, to, type, b, ttl, copies);
  }
  return res;
}

void OverlayEngine::send_faulty(net::NodeId from, net::NodeId to,
                                net::MessageType type,
                                std::function<void()> on_deliver,
                                std::uint64_t bytes) {
  // Delay first: with an empty plan this consumes exactly the draws the
  // fast path would, so checker-only runs replay byte-identically.
  const double base_delay = sample_delay_s(from, to);
  FaultDecision d;
  if (!fault_plan_.empty()) d = fault_plan_.decide(type, now_s(), fault_lane());
  if (d.duplicate) count(type, 1, bytes);  // extra copy's send
  const std::uint64_t copies = d.duplicate ? 2 : 1;
  trace_event(TraceKind::kSend, from, to, type, bytes, -1, copies);
  if (d.drop) {
    ledger_ref().count_dropped(type, copies);
    if (abuse_ambient_) abuse_ledger_.count_dropped(type, copies);
    trace_event(TraceKind::kDrop, from, to, type, bytes, -1, copies);
    return;
  }
  // The abuse scope is ambient only for the duration of the synchronous
  // spray service; capture it so the delayed fate (and any cascade the
  // delivery callback triggers) stays attributed to the abuser.
  const bool abuse = abuse_ambient_;
  deliver_copy(base_delay + d.extra_delay_s, from, to, type, bytes, abuse,
               on_deliver);
  if (d.duplicate)
    // The duplicate takes its own path through the network.
    deliver_copy(sample_delay_s(from, to) + d.extra_delay_s, from, to, type,
                 bytes, abuse, std::move(on_deliver));
}

void OverlayEngine::deliver_copy(double delay_s, net::NodeId from,
                                 net::NodeId to, net::MessageType type,
                                 std::uint64_t bytes, bool abuse,
                                 std::function<void()> on_deliver) {
  schedule_for(
      to, delay_s,
      [this, from, to, type, bytes, abuse, fn = std::move(on_deliver)] {
        const ScopedAbuse scope(this, abuse);
        if (node_dead(to)) {
          ledger_ref().count_dropped(type, 1);
          if (abuse_ambient_) abuse_ledger_.count_dropped(type, 1);
          trace_event(TraceKind::kDrop, from, to, type, bytes, -1, 1);
          return;
        }
        ledger_ref().count_delivered(type, 1);
        if (abuse_ambient_) abuse_ledger_.count_delivered(type, 1);
        trace_event(TraceKind::kDeliver, from, to, type, bytes, -1, 1);
        fn();
      });
}

void OverlayEngine::crash_node(net::NodeId u) {
  if (u >= dead_.size() || dead_[u]) return;
  dead_[u] = 1;
  ++crash_count_;
  trace_event(TraceKind::kCrash, u, net::kInvalidNode,
              net::MessageType::kQuery, 0, -1, 1);
  on_peer_crashed(u);
}

void OverlayEngine::schedule_crash_process() {
  if (!crash_model_.enabled()) return;
  const double first = std::max(crash_model_.start_s, sim_.now());
  const double mean_gap_s = 3600.0 / crash_model_.rate_per_hour;
  schedule_next_crash(first +
                      des::Exponential(mean_gap_s).sample(fault_rng_));
}

void OverlayEngine::schedule_next_crash(double at_s) {
  if (at_s >= crash_model_.end_s || at_s > horizon_s()) return;
  schedule_keyed_at(at_s, kKeyedCrashTick, 0, 0, [this] { run_crash_tick(); });
}

void OverlayEngine::run_crash_tick() {
  if (crash_count_ >= crash_model_.max_crashes) return;
  // Victim: uniform over still-alive nodes, by rejection sampling from
  // the fault lane (bounded so a mostly-dead population terminates).
  net::NodeId victim = net::kInvalidNode;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto pick = static_cast<net::NodeId>(
        fault_rng_.uniform_int(static_cast<std::uint64_t>(num_nodes())));
    if (!node_dead(pick)) {
      victim = pick;
      break;
    }
  }
  if (victim != net::kInvalidNode) crash_node(victim);
  if (crash_count_ < crash_model_.max_crashes) {
    const double mean_gap_s = 3600.0 / crash_model_.rate_per_hour;
    schedule_next_crash(sim_.now() +
                        des::Exponential(mean_gap_s).sample(fault_rng_));
  }
}

// --- snapshot/restore -----------------------------------------------------

namespace {
const char* kShardSnapshotError =
    ": snapshots are unsupported with --shards > 1 (per-shard clocks and RNG"
    " lanes cannot be reconciled with the serial checkpoint); run with"
    " --shards 1";
const char* kLoadSnapshotError =
    ": open-loop injection and snapshots are mutually exclusive (injected"
    " arrivals and admission queues are not keyed for checkpoint replay)";
}  // namespace

void OverlayEngine::note_keyed(std::uint64_t seq, std::uint32_t kind,
                               std::uint64_t a, std::uint64_t b) {
  keyed_notes_[seq] = KeyedNote{kind, a, b};
  // Fired events never erase their notes eagerly; rebuild from the live
  // queue once the table outgrows twice the pending population (amortized
  // O(1) per schedule, bounded memory).
  if (keyed_notes_.size() > 64 && keyed_notes_.size() > 2 * sim_.pending())
    sweep_keyed_notes();
}

void OverlayEngine::sweep_keyed_notes() {
  std::unordered_map<std::uint64_t, KeyedNote> live;
  live.reserve(sim_.pending());
  sim_.queue().for_each_live([&](double, std::uint64_t seq, des::EventId) {
    auto it = keyed_notes_.find(seq);
    if (it != keyed_notes_.end()) live.emplace(seq, it->second);
  });
  keyed_notes_ = std::move(live);
}

void OverlayEngine::request_snapshot_save(std::string path, double at_s) {
  if (parallel()) throw std::invalid_argument(cfg_.name + kShardSnapshotError);
  if (load_opts_.enabled)
    throw std::invalid_argument(cfg_.name + kLoadSnapshotError);
  if (adversary_plan_.enabled())
    throw std::invalid_argument(cfg_.name + kAdversarySnapshotError);
  if (capture_armed_)
    throw std::invalid_argument(cfg_.name + kCaptureSnapshotError);
  if (!(at_s > 0.0))
    throw std::invalid_argument(cfg_.name +
                                ": snapshot time must be positive");
  save_path_ = std::move(path);
  save_at_s_ = at_s;
  save_requested_ = true;
  snap_track_ = true;  // key every event scheduled from here on
}

void OverlayEngine::save_snapshot(const std::string& path) {
  if (parallel()) throw std::invalid_argument(cfg_.name + kShardSnapshotError);
  snap::Writer w;
  auto& id = w.section(snap::SectionId::kIdentity);
  id.str(cfg_.name);
  id.u64(num_nodes());
  id.u64(cfg_.seed);
  write_engine_core(w.section(snap::SectionId::kEngineCore));
  write_overlay(w.section(snap::SectionId::kOverlay));
  write_events(w.section(snap::SectionId::kEvents));
  save_domain(w.section(snap::SectionId::kDomain));
  w.write_file(path);
}

void OverlayEngine::load_snapshot(const std::string& path) {
  if (parallel()) throw std::invalid_argument(cfg_.name + kShardSnapshotError);
  if (load_opts_.enabled)
    throw std::invalid_argument(cfg_.name + kLoadSnapshotError);
  if (adversary_plan_.enabled())
    throw std::invalid_argument(cfg_.name + kAdversarySnapshotError);
  if (capture_armed_)
    throw std::invalid_argument(cfg_.name + kCaptureSnapshotError);
  if (resumed_ || sim_.pending() != 0 || sim_.now() != 0.0)
    throw std::logic_error(
        cfg_.name +
        ": load_snapshot must run on a freshly constructed simulation");
  const snap::Reader r(path);  // validates the whole file up front
  auto id = r.section(snap::SectionId::kIdentity);
  const std::string name = id.str();
  const std::uint64_t nodes = id.u64();
  const std::uint64_t seed = id.u64();
  if (name != cfg_.name || nodes != num_nodes() || seed != cfg_.seed)
    throw snap::SnapshotError(
        "file was written by scenario '" + name + "' (" +
        std::to_string(nodes) + " nodes, seed " + std::to_string(seed) +
        "); this run is '" + cfg_.name + "' (" +
        std::to_string(num_nodes()) + " nodes, seed " +
        std::to_string(cfg_.seed) + ")");
  // Resolve every section before applying any state, so a structurally
  // incomplete file cannot leave a half-restored simulation behind.
  auto core = r.section(snap::SectionId::kEngineCore);
  auto overlay = r.section(snap::SectionId::kOverlay);
  auto events = r.section(snap::SectionId::kEvents);
  auto domain = r.section(snap::SectionId::kDomain);
  read_engine_core(core);
  read_overlay(overlay);
  read_events(events);
  load_domain(domain);
  resumed_ = true;
}

void OverlayEngine::write_engine_core(snap::Writer::Out& out) {
  out.f64(sim_.now());
  out.u64(sim_.executed());
  const auto put_rng = [&out](const des::Rng& r) {
    for (std::uint64_t word : r.state()) out.u64(word);
  };
  put_rng(master_rng_);
  put_rng(lanes_.topo);
  put_rng(lanes_.session);
  put_rng(lanes_.query);
  put_rng(lanes_.delay);
  put_rng(fault_rng_);
  out.u64(dead_.size());
  for (char d : dead_) out.u8(static_cast<std::uint8_t>(d));
  out.u64(crash_count_);
  out.u64(bootstrap_underfills_);
  out.u8(underfill_reported_ ? 1 : 0);
  for (int t = 0; t < net::kNumMessageTypes; ++t)
    out.u64(ledger_.stats().total(static_cast<net::MessageType>(t)));
  for (int t = 0; t < net::kNumMessageTypes; ++t)
    out.u64(ledger_.bytes(static_cast<net::MessageType>(t)));
  for (int t = 0; t < net::kNumMessageTypes; ++t)
    out.u64(ledger_.delivered(static_cast<net::MessageType>(t)));
  for (int t = 0; t < net::kNumMessageTypes; ++t)
    out.u64(ledger_.dropped(static_cast<net::MessageType>(t)));
  out.f64(traffic_sample_period_s_);
  out.u64(traffic_samples_.size());
  for (const TrafficSample& s : traffic_samples_) {
    out.f64(s.time_s);
    out.u64(s.messages);
    out.u64(s.bytes);
  }
  out.u8(traffic_series_ ? 1 : 0);
  if (traffic_series_) {
    out.f64(traffic_series_->bucket_width());
    out.u64(traffic_series_->buckets().size());
    for (std::uint64_t b : traffic_series_->buckets()) out.u64(b);
  }
  out.u32(next_span_.load(std::memory_order_relaxed));
  // Period per registered periodic: the resumed run re-registers the
  // bodies and replay validates its table against this one.
  out.u64(periodics_.size());
  for (const Periodic& p : periodics_) out.f64(p.period_s);
  out.u8(crash_model_.enabled() ? 1 : 0);
}

void OverlayEngine::read_engine_core(snap::Reader::In& in) {
  const double now = in.f64();
  const std::uint64_t executed = in.u64();
  const auto get_rng = [&in](des::Rng& r) {
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t& word : s) word = in.u64();
    r.set_state(s);
  };
  get_rng(master_rng_);
  get_rng(lanes_.topo);
  get_rng(lanes_.session);
  get_rng(lanes_.query);
  get_rng(lanes_.delay);
  get_rng(fault_rng_);
  if (in.u64() != dead_.size())
    throw snap::SnapshotError(cfg_.name + ": dead-set size mismatch");
  for (char& d : dead_) d = static_cast<char>(in.u8());
  crash_count_ = in.u64();
  bootstrap_underfills_ = in.u64();
  underfill_reported_ = in.u8() != 0;
  net::MessageStats stats;
  for (int t = 0; t < net::kNumMessageTypes; ++t)
    stats.count(static_cast<net::MessageType>(t), in.u64());
  std::array<std::uint64_t, net::kNumMessageTypes> bytes{};
  std::array<std::uint64_t, net::kNumMessageTypes> delivered{};
  std::array<std::uint64_t, net::kNumMessageTypes> dropped{};
  for (std::uint64_t& v : bytes) v = in.u64();
  for (std::uint64_t& v : delivered) v = in.u64();
  for (std::uint64_t& v : dropped) v = in.u64();
  ledger_.restore(stats, bytes, delivered, dropped);
  const double sample_period = in.f64();
  if (sample_period != traffic_sample_period_s_)
    throw snap::SnapshotError(
        cfg_.name +
        ": traffic sample period differs from the snapshot's; resume with "
        "the same sampling flags");
  traffic_samples_.clear();
  const std::uint64_t num_samples = in.u64();
  traffic_samples_.reserve(static_cast<std::size_t>(num_samples));
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    TrafficSample s;
    s.time_s = in.f64();
    s.messages = in.u64();
    s.bytes = in.u64();
    traffic_samples_.push_back(s);
  }
  if (in.u8() != 0) {
    const double width = in.f64();
    std::vector<std::uint64_t> buckets(static_cast<std::size_t>(in.u64()));
    for (std::uint64_t& b : buckets) b = in.u64();
    traffic_series_.emplace(width);
    traffic_series_->restore(std::move(buckets));
  }
  next_span_.store(in.u32(), std::memory_order_relaxed);
  restored_periods_.clear();
  const std::uint64_t num_periodics = in.u64();
  restored_periods_.reserve(static_cast<std::size_t>(num_periodics));
  for (std::uint64_t i = 0; i < num_periodics; ++i)
    restored_periods_.push_back(in.f64());
  saved_crash_armed_ = in.u8() != 0;
  sim_.restore_clock(now, executed);
}

void OverlayEngine::write_overlay(snap::Writer::Out& out) {
  // Raw per-node lists in iteration order — including dangling entries
  // left by crashes, which are semantically meaningful state.
  for (net::NodeId u = 0; u < num_nodes(); ++u) {
    const auto lists = overlay_.lists(u);
    const auto outn = lists.out();
    out.u32(static_cast<std::uint32_t>(outn.size()));
    for (net::NodeId v : outn) out.u32(v);
    const auto inn = lists.in();
    out.u32(static_cast<std::uint32_t>(inn.size()));
    for (net::NodeId v : inn) out.u32(v);
  }
}

void OverlayEngine::read_overlay(snap::Reader::In& in) {
  // The constructor-built overlay is discarded wholesale; the raw add_*
  // mutators bypass link maintenance so restored lists reproduce the saved
  // iteration order (and any deliberate dangling entries) exactly.
  for (net::NodeId u = 0; u < num_nodes(); ++u) overlay_.lists(u).clear();
  for (net::NodeId u = 0; u < num_nodes(); ++u) {
    const auto lists = overlay_.lists(u);
    const std::uint32_t n_out = in.u32();
    for (std::uint32_t i = 0; i < n_out; ++i)
      if (!lists.add_out(in.u32()))
        throw snap::SnapshotError(cfg_.name + ": overlay out-list restore "
                                              "failed (capacity mismatch?)");
    const std::uint32_t n_in = in.u32();
    for (std::uint32_t i = 0; i < n_in; ++i)
      if (!lists.add_in(in.u32()))
        throw snap::SnapshotError(cfg_.name + ": overlay in-list restore "
                                              "failed (capacity mismatch?)");
  }
}

void OverlayEngine::write_events(snap::Writer::Out& out) {
  struct Rec {
    double t;
    std::uint64_t seq;
    std::uint32_t kind;
    std::uint64_t a, b;
  };
  std::vector<Rec> recs;
  recs.reserve(sim_.pending());
  sim_.queue().for_each_live([&](double t, std::uint64_t seq, des::EventId) {
    auto it = keyed_notes_.find(seq);
    if (it == keyed_notes_.end())
      throw snap::SnapshotError(
          cfg_.name +
          ": a pending event was scheduled outside the keyed API and cannot "
          "be checkpointed");
    recs.push_back({t, seq, it->second.kind, it->second.a, it->second.b});
  });
  // (time, seq) is the queue's pop order; replay re-schedules in this
  // order with fresh ascending sequence numbers, preserving FIFO ties.
  std::sort(recs.begin(), recs.end(), [](const Rec& x, const Rec& y) {
    return x.t != y.t ? x.t < y.t : x.seq < y.seq;
  });
  out.u64(recs.size());
  for (const Rec& r : recs) {
    out.f64(r.t);
    out.u32(r.kind);
    out.u64(r.a);
    out.u64(r.b);
  }
}

void OverlayEngine::read_events(snap::Reader::In& in) {
  restored_events_.clear();
  const std::uint64_t n = in.u64();
  restored_events_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    PendingRecord r;
    r.t = in.f64();
    r.kind = in.u32();
    r.a = in.u64();
    r.b = in.u64();
    restored_events_.push_back(r);
  }
}

void OverlayEngine::replay_restored_events() {
  if (!resumed_) return;
  if (restored_periods_.size() != periodics_.size())
    throw snap::SnapshotError(
        cfg_.name + ": this run registered " +
        std::to_string(periodics_.size()) + " periodic(s) but the snapshot " +
        "recorded " + std::to_string(restored_periods_.size()) +
        "; resume with the same scenario flags");
  for (std::size_t i = 0; i < periodics_.size(); ++i)
    if (restored_periods_[i] != periodics_[i].period_s)
      throw snap::SnapshotError(cfg_.name + ": periodic " +
                                std::to_string(i) +
                                "'s period differs from the snapshot's");
  std::vector<PendingRecord> records = std::move(restored_events_);
  restored_events_.clear();
  for (const PendingRecord& r : records)
    restore_keyed_event(r.t, r.kind, r.a, r.b);
}

void OverlayEngine::restore_keyed_event(double t, std::uint32_t kind,
                                        std::uint64_t a, std::uint64_t /*b*/) {
  switch (kind) {
    case kKeyedPeriodic: {
      const std::size_t idx = static_cast<std::size_t>(a);
      if (idx >= periodics_.size())
        throw snap::SnapshotError(cfg_.name +
                                  ": periodic index out of range in snapshot");
      schedule_keyed_at(t, kKeyedPeriodic, a, 0,
                        [this, idx] { run_periodic_tick(idx); });
      return;
    }
    case kKeyedCrashTick:
      schedule_keyed_at(t, kKeyedCrashTick, 0, 0,
                        [this] { run_crash_tick(); });
      return;
    default:
      throw snap::SnapshotError(cfg_.name + ": unknown keyed event kind " +
                                std::to_string(kind) + " in snapshot");
  }
}

void OverlayEngine::save_domain(snap::Writer::Out&) const {
  throw snap::SnapshotError(cfg_.name +
                            ": scenario does not implement snapshots");
}

void OverlayEngine::load_domain(snap::Reader::In&) {
  throw snap::SnapshotError(cfg_.name +
                            ": scenario does not implement snapshots");
}

// --- adversarial & heterogeneous scenario layer ---------------------------

void OverlayEngine::set_adversary(AdversaryPlan plan) {
  plan.validate();
  if (plan.enabled()) {
    if (parallel())
      throw std::invalid_argument(cfg_.name + kAdversaryShardError);
    if (save_requested_ || resumed_)
      throw std::invalid_argument(cfg_.name + kAdversarySnapshotError);
    if (sim_.now() > 0.0)
      throw std::logic_error(cfg_.name +
                             ": set_adversary must run before run");
    // Seed the dedicated lane only when the plan can actually draw; a
    // disabled plan leaves the default-constructed lane untouched.
    adversary_rng_ = make_adversary_lane(cfg_.seed);
  }
  adversary_plan_ = plan;
  adversary_capacity_ = plan.capacity_enabled();
}

void OverlayEngine::set_capture_trace(std::string path) {
  if (path.empty())
    throw std::invalid_argument(cfg_.name +
                                ": --capture-trace path must be non-empty");
  if (parallel()) throw std::invalid_argument(cfg_.name + kCaptureShardError);
  if (save_requested_ || resumed_)
    throw std::invalid_argument(cfg_.name + kCaptureSnapshotError);
  capture_path_ = std::move(path);
  capture_armed_ = true;
}

void OverlayEngine::arm_adversary() {
  if (!adversary_plan_.enabled()) return;
  const AdversaryPlan& p = adversary_plan_;
  // Roles are drawn in a fixed order (abusers, then free-riders) so each
  // adversity's draws are a deterministic function of the plan knobs.
  if (p.abusers_enabled() || p.free_riders_enabled())
    roles_.assign(num_nodes(), 0);
  if (p.abusers_enabled()) {
    std::size_t k = static_cast<std::size_t>(std::llround(
        p.abuser_fraction * static_cast<double>(num_nodes())));
    if (k == 0) k = 1;
    if (k >= num_nodes()) k = num_nodes() - 1;
    const std::vector<std::size_t> picks =
        des::sample_without_replacement(num_nodes(), k, adversary_rng_);
    abusers_.reserve(k);
    for (std::size_t idx : picks) {
      roles_[idx] |= kRoleAbuser;
      abusers_.push_back(static_cast<net::NodeId>(idx));
    }
    std::sort(abusers_.begin(), abusers_.end());
    adversary_stats_.abusers = abusers_.size();
    schedule_next_abuse(std::max(p.abuse_start_s, sim_.now()));
  }
  if (p.free_riders_enabled()) {
    // One Bernoulli per non-abuser, in node order.  Abusers keep their
    // own (full) libraries: their pathology is traffic, not stinginess.
    for (net::NodeId u = 0; u < num_nodes(); ++u) {
      if ((roles_[u] & kRoleAbuser) != 0) continue;
      if (adversary_rng_.bernoulli(p.free_rider_fraction)) {
        roles_[u] |= kRoleFreeRider;
        ++adversary_stats_.free_riders;
      }
    }
  }
  if (p.outage_enabled() && p.outage_at_s <= horizon_s())
    sim_.schedule_at(std::max(p.outage_at_s, sim_.now()),
                     [this] { run_regional_outage(); });
  if (p.storm_enabled())
    schedule_next_storm_kick(std::max(p.storm_start_s, sim_.now()));
}

void OverlayEngine::schedule_next_abuse(double from_s) {
  // One aggregate Poisson process at `abusers × rate`, with a uniform
  // abuser picked per event — statistically identical to independent
  // per-abuser sprays, and one pending event instead of k.
  const double rate = adversary_plan_.abuse_rate_per_s *
                      static_cast<double>(abusers_.size());
  if (rate <= 0.0) return;
  const double at =
      from_s + des::Exponential(1.0 / rate).sample(adversary_rng_);
  if (at >= adversary_plan_.abuse_end_s || at > horizon_s()) return;
  sim_.schedule_at(at, [this] { run_abuse_event(); });
}

void OverlayEngine::run_abuse_event() {
  const double now = sim_.now();
  const net::NodeId a = abusers_[adversary_rng_.uniform_int(
      static_cast<std::uint64_t>(abusers_.size()))];
  // A crashed abuser skips its turn but the process keeps its rate:
  // offered abuse does not die with one abuser.
  if (!node_dead(a)) {
    ++adversary_stats_.abuse_queries;
    // Swap the injection lane so the scenario's kAnyItem targeting draws
    // come from the adversary lane, never the open-loop stream.
    des::Rng* const prev = inject_lane_;
    inject_lane_ = &adversary_rng_;
    {
      const ScopedAbuse scope(this, true);
      const load::Served served = serve_injected_query(a, load::kAnyItem);
      if (served.hit) ++adversary_stats_.abuse_hits;
    }
    inject_lane_ = prev;
  }
  schedule_next_abuse(now);
}

void OverlayEngine::run_regional_outage() {
  const AdversaryPlan& p = adversary_plan_;
  const auto cls = static_cast<net::BandwidthClass>(p.outage_class);
  // Node order; a partial outage draws one Bernoulli per live class
  // member.  crash_node leaves dangling neighbor entries, exactly like a
  // CrashModel victim.
  for (net::NodeId u = 0; u < num_nodes(); ++u) {
    if (delay_.node_class(u) != cls || node_dead(u)) continue;
    if (p.outage_fraction < 1.0 &&
        !adversary_rng_.bernoulli(p.outage_fraction))
      continue;
    crash_node(u);
    ++adversary_stats_.outage_victims;
  }
}

void OverlayEngine::schedule_next_storm_kick(double from_s) {
  const double at =
      from_s + des::Exponential(1.0 / adversary_plan_.storm_rate_per_s)
                   .sample(adversary_rng_);
  if (at >= adversary_plan_.storm_end_s || at > horizon_s()) return;
  sim_.schedule_at(at, [this] { run_storm_kick(); });
}

void OverlayEngine::run_storm_kick() {
  const double now = sim_.now();
  if (adversary_churn_kick(adversary_rng_,
                           adversary_plan_.storm_offline_mean_s,
                           adversary_plan_.storm_pareto_shape))
    ++adversary_stats_.storm_kicks;
  schedule_next_storm_kick(now);
}

void OverlayEngine::write_capture_file() {
  std::FILE* f = std::fopen(capture_path_.c_str(), "w");
  if (!f)
    throw std::runtime_error(cfg_.name + ": cannot open capture file '" +
                             capture_path_ + "' for writing");
  std::fprintf(f,
               "# %s closed-loop query arrivals (time_s peer item); replay "
               "with --open-loop --load-trace\n",
               cfg_.name.c_str());
  for (const CapturedArrival& a : captured_)
    std::fprintf(f, "%.9f %llu %llu\n", a.t,
                 static_cast<unsigned long long>(a.peer),
                 static_cast<unsigned long long>(a.item));
  if (std::fclose(f) != 0)
    throw std::runtime_error(cfg_.name + ": failed writing capture file '" +
                             capture_path_ + "'");
}

// --- open-loop load layer -------------------------------------------------

load::Served OverlayEngine::serve_injected_query(net::NodeId, std::uint64_t) {
  throw std::logic_error(
      cfg_.name +
      ": open-loop injection is not supported by this scenario (no "
      "serve_injected_query override)");
}

void OverlayEngine::set_open_loop(load::OpenLoopOptions opts) {
  if (!opts.enabled) {
    load_opts_ = load::OpenLoopOptions{};
    return;
  }
  if (parallel())
    throw std::invalid_argument(
        cfg_.name +
        ": open-loop injection is unsupported with --shards > 1 (admission "
        "queues and the load lane are serial state); run with --shards 1");
  if (save_requested_ || resumed_)
    throw std::invalid_argument(cfg_.name + kLoadSnapshotError);
  if (sim_.now() > 0.0)
    throw std::logic_error(cfg_.name + ": set_open_loop must run before run");
  if (opts.admission_cap == 0)
    throw std::invalid_argument(cfg_.name + ": --admission-cap must be >= 1");
  if (opts.trace.empty() && !(opts.schedule.base_qps > 0.0))
    throw std::invalid_argument(
        cfg_.name +
        ": open-loop injection needs --arrival-rate > 0 or a --load-trace "
        "file");
  for (const load::TraceArrival& a : opts.trace)
    if (a.peer != load::kAnyPeer &&
        a.peer >= static_cast<std::int64_t>(num_nodes()))
      throw std::invalid_argument(
          cfg_.name + ": load trace names peer " + std::to_string(a.peer) +
          " but the population is " + std::to_string(num_nodes()));
  load_opts_ = std::move(opts);
}

void OverlayEngine::arm_open_loop() {
  load_queues_.assign(num_nodes(), load::PeerQueue{});
  load_trace_idx_ = 0;
  load_live_depth_ = 0;
  if (load_opts_.queue_sample_period_s > 0.0)
    sim_.schedule_in(load_opts_.queue_sample_period_s,
                     [this] { sample_load_queues(); });
  if (!load_opts_.trace.empty())
    schedule_next_trace_arrival();
  else
    schedule_next_generated_arrival(0.0);
}

void OverlayEngine::schedule_next_generated_arrival(double from_s) {
  // Non-homogeneous Poisson by thinning: candidate points at the
  // schedule's peak rate, each kept with probability rate(t)/peak.  All
  // draws come from the load lane.
  const double peak = load_opts_.schedule.peak_qps();
  double t = from_s;
  while (true) {
    t += -std::log1p(-load_rng_.uniform()) / peak;
    if (t >= horizon_s()) return;
    if (load_rng_.uniform() * peak <= load_opts_.schedule.rate_at(t)) break;
  }
  sim_.schedule_at(t, [this] {
    // Crashed peers still attract offered load; their arrivals are
    // refused at admission, not silently skipped.
    const auto peer = static_cast<net::NodeId>(
        load_rng_.uniform_int(static_cast<std::uint64_t>(num_nodes())));
    const double now = sim_.now();
    handle_load_arrival(peer, load::kAnyItem);
    schedule_next_generated_arrival(now);
  });
}

void OverlayEngine::schedule_next_trace_arrival() {
  while (load_trace_idx_ < load_opts_.trace.size()) {
    const load::TraceArrival a = load_opts_.trace[load_trace_idx_++];
    if (a.time_s >= horizon_s()) return;  // sorted: the rest is past the end
    sim_.schedule_at(std::max(a.time_s, sim_.now()), [this, a] {
      const net::NodeId peer =
          a.peer == load::kAnyPeer
              ? static_cast<net::NodeId>(load_rng_.uniform_int(
                    static_cast<std::uint64_t>(num_nodes())))
              : static_cast<net::NodeId>(a.peer);
      handle_load_arrival(peer, a.item);
      schedule_next_trace_arrival();
    });
    return;
  }
}

void OverlayEngine::handle_load_arrival(net::NodeId peer, std::uint64_t item) {
  const double now = sim_.now();
  ++load_stats_.offered;
  load_stats_.offered_series.add(now, 1);
  load::PeerQueue& q = load_queues_[peer];
  if (node_dead(peer) || q.depth() >= load_opts_.admission_cap) {
    ++load_stats_.rejected;
    load_stats_.rejected_series.add(now, 1);
    return;
  }
  ++load_stats_.admitted;
  q.waiting.push_back(load::PendingQuery{now, item});
  ++load_live_depth_;
  if (load_live_depth_ > load_stats_.peak_queue_depth)
    load_stats_.peak_queue_depth = load_live_depth_;
  if (!q.busy) start_load_service(peer);
}

void OverlayEngine::start_load_service(net::NodeId peer) {
  load::PeerQueue& q = load_queues_[peer];
  if (q.busy || q.waiting.empty()) return;
  if (node_dead(peer)) {
    shed_load_queue(peer);
    return;
  }
  const load::PendingQuery job = q.waiting.front();
  q.waiting.pop_front();
  q.busy = true;
  const load::Served served = serve_injected_query(peer, job.item);
  const double latency_s = served.latency_s > 0.0 ? served.latency_s : 0.0;
  sim_.schedule_in(latency_s,
                   [this, peer, arrival = job.arrival_s, hit = served.hit] {
                     finish_load_service(peer, arrival, hit);
                   });
}

void OverlayEngine::finish_load_service(net::NodeId peer, double arrival_s,
                                        bool hit) {
  load::PeerQueue& q = load_queues_[peer];
  q.busy = false;
  --load_live_depth_;
  ++load_stats_.completed;
  if (hit) ++load_stats_.hits;
  const double now = sim_.now();
  if (now >= warmup_s()) {
    ++load_stats_.completed_after_warmup;
    if (hit) ++load_stats_.hits_after_warmup;
    load_stats_.sojourn_s.add(now - arrival_s);
    load_stats_.sojourn_hist.add(now - arrival_s);
  }
  // A peer that crashed mid-service completes the in-flight query (the
  // analytic latency was already determined) but its queue is shed.
  if (node_dead(peer)) {
    shed_load_queue(peer);
    return;
  }
  start_load_service(peer);
}

void OverlayEngine::shed_load_queue(net::NodeId peer) {
  load::PeerQueue& q = load_queues_[peer];
  load_stats_.shed += q.waiting.size();
  load_live_depth_ -= q.waiting.size();
  q.waiting.clear();
}

void OverlayEngine::sample_load_queues() {
  load_stats_.queue_depth.add(static_cast<double>(load_live_depth_));
  const double period = load_opts_.queue_sample_period_s;
  if (sim_.now() + period <= horizon_s())
    sim_.schedule_in(period, [this] { sample_load_queues(); });
}

}  // namespace dsf::sim
