#include "sim/engine.h"

#include <cstdio>
#include <utility>

#include "core/unreachable.h"

namespace dsf::sim {

RngLanes make_lanes(des::Rng& master, RngLayout layout) {
  RngLanes lanes;
  switch (layout) {
    case RngLayout::kCompact:
      // Historical compact layout: exactly one split (the delay lane);
      // everything else draws from the master stream.
      lanes.delay = master.split();
      return lanes;
    case RngLayout::kFourLane:
      // Historical gnutella layout: four splits in this exact order.
      lanes.topo = master.split();
      lanes.session = master.split();
      lanes.query = master.split();
      lanes.delay = master.split();
      return lanes;
  }
  core::unreachable_enum("sim::RngLayout");
}

std::uint64_t default_message_bytes(net::MessageType t) {
  // Representative wire sizes modeled on the Gnutella 0.4 descriptor
  // family: header (23 B) plus typical payloads.  Exploration replies
  // carry statistics/digests and dominate.
  switch (t) {
    case net::MessageType::kQuery:
      return 82;
    case net::MessageType::kQueryReply:
      return 104;
    case net::MessageType::kPing:
      return 23;
    case net::MessageType::kPong:
      return 37;
    case net::MessageType::kExploreQuery:
      return 64;
    case net::MessageType::kExploreReply:
      return 512;
    case net::MessageType::kInvitation:
      return 48;
    case net::MessageType::kInvitationReply:
      return 32;
    case net::MessageType::kEviction:
      return 32;
    case net::MessageType::kCount_:
      break;
  }
  core::unreachable_enum("net::MessageType");
}

OverlayEngine::OverlayEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)),
      master_rng_(cfg_.seed),
      lanes_(make_lanes(master_rng_, cfg_.rng_layout)),
      delay_(cfg_.num_nodes, master_rng_, cfg_.delay_params),
      overlay_(cfg_.num_nodes, cfg_.relation, cfg_.out_capacity,
               cfg_.in_capacity),
      stamps_(cfg_.num_nodes) {
  // Unused lanes alias the master stream so compact-layout scenarios keep
  // drawing from the sequence they always did.
  const bool four = cfg_.rng_layout == RngLayout::kFourLane;
  topo_ = four ? &lanes_.topo : &master_rng_;
  session_ = four ? &lanes_.session : &master_rng_;
  query_ = four ? &lanes_.query : &master_rng_;
}

void OverlayEngine::schedule_every(double first_delay_s, double period_s,
                                   std::function<void()> fn) {
  schedule_periodic(first_delay_s, period_s,
                    std::make_shared<std::function<void()>>(std::move(fn)));
}

void OverlayEngine::schedule_periodic(
    double delay_s, double period_s,
    std::shared_ptr<std::function<void()>> fn) {
  sim_.schedule_in(delay_s, [this, period_s, fn] {
    (*fn)();
    schedule_periodic(period_s, period_s, fn);
  });
}

void OverlayEngine::sample_traffic() {
  TrafficSample s;
  s.time_s = sim_.now();
  s.messages = ledger_.stats().total();
  s.bytes = ledger_.total_bytes();
  traffic_samples_.push_back(s);
  if (traffic_series_) {
    // Per-bucket increments: the series holds new messages per period.
    const std::uint64_t prev = traffic_samples_.size() > 1
                                   ? traffic_samples_.rbegin()[1].messages
                                   : 0;
    traffic_series_->add(s.time_s, s.messages - prev);
  }
}

std::uint64_t OverlayEngine::run_until_horizon() {
  if (traffic_sample_period_s_ > 0.0) {
    traffic_series_.emplace(traffic_sample_period_s_);
    schedule_every(traffic_sample_period_s_, traffic_sample_period_s_,
                   [this] { sample_traffic(); });
  }
  const std::uint64_t executed = sim_.run_until(horizon_s());
  if (bootstrap_underfills_ > 0 && !underfill_reported_) {
    underfill_reported_ = true;
    std::fprintf(stderr,
                 "warning: %s: %llu bootstrap fill(s) exhausted the attempt "
                 "budget before reaching the target degree\n",
                 cfg_.name.c_str(),
                 static_cast<unsigned long long>(bootstrap_underfills_));
  }
  return executed;
}

}  // namespace dsf::sim
