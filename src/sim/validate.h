#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dsf::sim {

/// Shared config-validation helpers: every scenario rejects degenerate
/// parameterizations before any member is constructed (a zero divisor used
/// to reach a Zipf table or a modulo before the hand-rolled checks ran),
/// with one consistent message shape: "<sim>: <complaint>".
inline void validate_or_throw(bool ok, std::string_view sim,
                              std::string_view complaint) {
  if (!ok)
    throw std::invalid_argument(std::string(sim) + ": " +
                                std::string(complaint));
}

/// Rejects a zero count/capacity ("<sim>: <field> must be positive").
inline void require_positive(std::string_view sim, std::string_view field,
                             std::uint64_t value) {
  validate_or_throw(value > 0, sim,
                    std::string(field) + " must be positive");
}

/// Rejects a degenerate divisor: `divisor` must be positive and divide
/// `value` evenly ("<sim>: <field> must divide evenly into <divisor_field>").
inline void require_divides(std::string_view sim, std::string_view field,
                            std::uint64_t value, std::string_view divisor_field,
                            std::uint64_t divisor) {
  require_positive(sim, divisor_field, divisor);
  validate_or_throw(value % divisor == 0, sim,
                    std::string(field) + " must divide evenly into " +
                        std::string(divisor_field));
}

}  // namespace dsf::sim
