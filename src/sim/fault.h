#pragma once

// Deterministic fault injection for the overlay engine.
//
// A FaultPlan tells the engine's unified transmission path to drop,
// duplicate, or extra-delay messages, per message type, with configurable
// probabilities inside an optional time window.  A CrashModel kills peers
// abruptly: no departure clean-up runs, so the victims' neighbor entries
// dangle exactly as they would after a real ungraceful disconnect.
//
// Determinism contract: every fault decision draws from a dedicated RNG
// lane derived via des::hash_seed from the scenario seed — never from the
// master stream or any existing lane — and an empty plan (or disabled
// crash model) performs *zero* draws and schedules *zero* events.  A
// baseline run with the fault layer merely attached therefore replays
// byte-identically; tests/sim/fault_golden_test.cpp pins this.

#include <array>
#include <cstdint>
#include <limits>

#include "des/rng.h"
#include "net/message.h"

namespace dsf::sim {

/// What the fault layer decided for one transmission.  Defaults describe a
/// clean network: deliver one copy, on time.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  double extra_delay_s = 0.0;
};

/// Per-message-type fault rule.  The three probabilities partition a single
/// uniform draw (drop wins over duplicate wins over delay), so they must
/// sum to at most 1.  Faults apply only while
/// `window_start_s <= now < window_end_s`; outside the window the rule is
/// inert and consumes no randomness.
struct FaultRule {
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  /// Added to the propagation delay when the delay branch fires.
  double extra_delay_s = 1.0;
  double window_start_s = 0.0;
  double window_end_s = std::numeric_limits<double>::infinity();

  /// A rule that can never fire (all probabilities zero).
  bool trivial() const noexcept {
    return drop_prob <= 0.0 && duplicate_prob <= 0.0 && delay_prob <= 0.0;
  }
};

/// The per-type fault schedule consulted by OverlayEngine's transmission
/// paths.  Empty by default; set_rule validates aggressively because a
/// mis-specified probability would silently skew every curve downstream.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Installs `rule` for message type `t`.  Throws std::invalid_argument
  /// if any probability is outside [0, 1], the probabilities sum past 1,
  /// the extra delay is negative, or the window is inverted.
  void set_rule(net::MessageType t, const FaultRule& rule);

  /// Installs `rule` for every message type.
  void set_rule_all(const FaultRule& rule);

  const FaultRule& rule(net::MessageType t) const noexcept {
    return rules_[static_cast<std::size_t>(t)];
  }

  /// True if `t` has a non-trivial rule installed.
  bool targets(net::MessageType t) const noexcept {
    return (active_mask_ & (1u << static_cast<unsigned>(t))) != 0;
  }

  /// True if no rule can ever fire.  The engine checks this before every
  /// decision so an empty plan costs one branch and zero draws.
  bool empty() const noexcept { return active_mask_ == 0; }

  /// Decides the fate of one transmission of type `t` at simulation time
  /// `now_s`.  Consumes exactly one draw from `lane` when `t` is targeted
  /// and `now_s` is inside the rule's window, and zero draws otherwise.
  FaultDecision decide(net::MessageType t, double now_s, des::Rng& lane) const;

 private:
  std::array<FaultRule, net::kNumMessageTypes> rules_{};
  std::uint32_t active_mask_ = 0;
};

/// Abrupt peer failures: crashes arrive as a Poisson process at
/// `rate_per_hour` across the whole population, inside [start_s, end_s),
/// up to `max_crashes` victims.  A crashed peer stops cold — its pending
/// activity is cancelled, but nobody updates neighbor tables on its
/// behalf, so ex-neighbors keep dangling entries until they discover the
/// failure themselves (their sends to it are dropped on arrival).
struct CrashModel {
  double rate_per_hour = 0.0;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  std::size_t max_crashes = std::numeric_limits<std::size_t>::max();

  bool enabled() const noexcept {
    return rate_per_hour > 0.0 && max_crashes > 0;
  }
};

/// Builds the fault-decision RNG lane for a scenario seed.  Derived with
/// des::hash_seed under a fixed salt so it is independent of the master
/// stream and of every lane split off it — attaching the fault layer never
/// perturbs the baseline RNG trajectory.
des::Rng make_fault_lane(std::uint64_t seed);

}  // namespace dsf::sim
