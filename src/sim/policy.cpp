#include "sim/policy.h"

namespace dsf::sim {

std::unique_ptr<core::BenefitFunction> make_benefit(BenefitPolicy policy) {
  switch (policy) {
    case BenefitPolicy::kBandwidthOverResults:
      return std::make_unique<core::BandwidthOverResults>();
    case BenefitPolicy::kItemsOverLatency:
      return std::make_unique<core::ItemsOverLatency>();
    case BenefitPolicy::kProcessingTimeSaved:
      return std::make_unique<core::ProcessingTimeSaved>();
    case BenefitPolicy::kUnit:
      return std::make_unique<core::UnitBenefit>();
    case BenefitPolicy::kInverseLatency:
      return std::make_unique<core::InverseLatency>();
  }
  core::unreachable_enum("sim::BenefitPolicy");
}

}  // namespace dsf::sim
