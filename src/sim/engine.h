#pragma once

// The shared overlay-engine layer: everything the four scenario simulators
// used to re-implement — RNG lane splitting, the delay model, the overlay
// relation table, message accounting, bootstrap helpers, periodic
// scheduling and horizon control — owned by one base class.  A scenario
// composes/subclasses OverlayEngine, keeps only its domain state (catalogs,
// caches, holdings) and its event handlers, and inherits the rest.
//
// Determinism contract: the engine constructs its members in exactly the
// order the hand-rolled simulators did (master RNG → lane splits → delay
// model → overlay), so a fixed seed replays the exact pre-refactor
// trajectory.  Helpers that could perturb the event or RNG stream
// (schedule_every, fill_random_neighbors, draw_initial_online) are
// documented with the equivalence argument they rely on.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compact_relations.h"
#include "core/relations.h"
#include "core/flood_search.h"
#include "core/visit_stamp.h"
#include "des/rng.h"
#include "des/sharded.h"
#include "des/simulator.h"
#include "load/open_loop.h"
#include "metrics/time_series.h"
#include "net/delay_model.h"
#include "net/message.h"
#include "net/node_id.h"
#include "obs/sink.h"
#include "snap/snapshot.h"
#include "sim/adversary.h"
#include "sim/fault.h"
#include "sim/policy.h"
#include "sim/validate.h"

namespace dsf::sim {

class InvariantChecker;  // sim/invariants.h (which includes this header)

/// How the engine carves RNG lanes out of the master stream.  Both layouts
/// predate the engine; preserving them bit-for-bit is what keeps every
/// figure bench byte-identical across the refactor.
enum class RngLayout : std::uint8_t {
  /// One split for the delay lane; topology/session/query draws come
  /// straight from the master stream (diglib, olap, webcache).
  kCompact,
  /// Four splits in fixed order — topology, session, query, delay — then
  /// the delay model consumes the master stream (gnutella).
  kFourLane,
};

/// Everything the engine needs to stand up the shared scaffolding.  Built
/// by each scenario's `engine_config(const Config&)`, which also runs the
/// shared validation (sim/validate.h) *before* any member is constructed —
/// a degenerate divisor must never reach a Zipf table or a modulo.
struct EngineConfig {
  std::string name;  ///< scenario tag for diagnostics ("gnutella", ...)
  std::size_t num_nodes = 0;
  std::uint64_t seed = 0;
  RngLayout rng_layout = RngLayout::kCompact;
  core::RelationKind relation = core::RelationKind::kAsymmetric;
  std::size_t out_capacity = 0;
  std::size_t in_capacity = 0;
  double sim_hours = 0.0;
  double warmup_hours = 0.0;
  net::DelayModelParams delay_params{};
};

/// The engine's RNG lanes.  Unused lanes (compact layout) stay at their
/// default seed and are never read — the accessors alias the master stream
/// instead.
struct RngLanes {
  des::Rng topo;
  des::Rng session;
  des::Rng query;
  des::Rng delay;
};

/// Splits lanes off `master` per the layout.  Order of splits is part of
/// the determinism contract (see RngLayout).
RngLanes make_lanes(des::Rng& master, RngLayout layout);

/// Representative wire size of one message of type `t` in bytes, used for
/// byte-level traffic accounting (counts were always tracked; bytes let a
/// scenario report bandwidth, not just message counts).
std::uint64_t default_message_bytes(net::MessageType t);

/// Per-type message counts *and* bytes.  Wraps net::MessageStats so ported
/// scenarios keep publishing the same `traffic` object they always did.
class MessageLedger {
 public:
  /// Counts `n` sent messages of type `t`; `bytes_each` of 0 means "use
  /// the default wire size for this type".
  void count(net::MessageType t, std::uint64_t n = 1,
             std::uint64_t bytes_each = 0) noexcept {
    stats_.count(t, n);
    bytes_[static_cast<int>(t)] +=
        n * (bytes_each ? bytes_each : default_message_bytes(t));
  }

  /// Fate accounting, filled in by the fault layer: of the counted sends,
  /// how many copies reached their receiver and how many were lost (to a
  /// fault rule or a dead peer).  Both stay zero on the fault-free paths,
  /// which never resolve per-copy fates.
  void count_delivered(net::MessageType t, std::uint64_t n = 1) noexcept {
    delivered_[static_cast<int>(t)] += n;
  }
  void count_dropped(net::MessageType t, std::uint64_t n = 1) noexcept {
    dropped_[static_cast<int>(t)] += n;
  }

  const net::MessageStats& stats() const noexcept { return stats_; }

  std::uint64_t delivered(net::MessageType t) const noexcept {
    return delivered_[static_cast<int>(t)];
  }
  std::uint64_t dropped(net::MessageType t) const noexcept {
    return dropped_[static_cast<int>(t)];
  }
  std::uint64_t total_delivered() const noexcept {
    std::uint64_t sum = 0;
    for (auto d : delivered_) sum += d;
    return sum;
  }
  std::uint64_t total_dropped() const noexcept {
    std::uint64_t sum = 0;
    for (auto d : dropped_) sum += d;
    return sum;
  }

  std::uint64_t bytes(net::MessageType t) const noexcept {
    return bytes_[static_cast<int>(t)];
  }

  std::uint64_t total_bytes() const noexcept {
    std::uint64_t sum = 0;
    for (auto b : bytes_) sum += b;
    return sum;
  }

  /// Merges another ledger in (sharded runs fold per-shard ledgers into
  /// the engine's in canonical shard order at the end of the run).
  MessageLedger& operator+=(const MessageLedger& other) noexcept {
    stats_ += other.stats_;
    for (std::size_t i = 0; i < bytes_.size(); ++i) {
      bytes_[i] += other.bytes_[i];
      delivered_[i] += other.delivered_[i];
      dropped_[i] += other.dropped_[i];
    }
    return *this;
  }

  /// Checkpoint restore: replaces every counter with the saved totals.
  void restore(
      const net::MessageStats& stats,
      const std::array<std::uint64_t, net::kNumMessageTypes>& bytes,
      const std::array<std::uint64_t, net::kNumMessageTypes>& delivered,
      const std::array<std::uint64_t, net::kNumMessageTypes>& dropped) noexcept {
    stats_ = stats;
    bytes_ = bytes;
    delivered_ = delivered;
    dropped_ = dropped;
  }

 private:
  net::MessageStats stats_;
  std::array<std::uint64_t, net::kNumMessageTypes> bytes_{};
  std::array<std::uint64_t, net::kNumMessageTypes> delivered_{};
  std::array<std::uint64_t, net::kNumMessageTypes> dropped_{};
};

/// What a trace record describes.  The fault-free fast paths emit one
/// kSend per transmission; the fault layer resolves every copy's fate
/// with a matching kDeliver or kDrop, and reports crashes.
enum class TraceKind : std::uint8_t {
  kSend,     ///< a copy was put on the wire
  kDeliver,  ///< the copy reached its receiver
  kDrop,     ///< the copy was lost (fault rule, or receiver dead)
  kCrash,    ///< `from` crashed ungracefully (`to` is kInvalidNode)
};

/// One structured trace record, emitted at the engine's trace points when
/// a hook or an InvariantChecker is attached.
struct TraceEvent {
  TraceKind kind = TraceKind::kSend;
  double time_s = 0.0;
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;
  net::MessageType type = net::MessageType::kQuery;
  std::uint64_t bytes = 0;
  /// Remaining hop budget carried by a query transmission; -1 when the
  /// message type carries no TTL (replies, control traffic, crashes).
  int ttl = -1;
  /// True when this record belongs to an abuser's blast radius: the copy
  /// was sent (or its fate resolved) inside an adversary-layer abuse scope.
  /// Always false with the layer off, so existing consumers are untouched.
  bool abuse = false;
};
using TraceHook = std::function<void(const TraceEvent&)>;

/// One periodic traffic sample (enable via set_traffic_sample_period).
struct TrafficSample {
  double time_s = 0.0;
  std::uint64_t messages = 0;  ///< cumulative count at sample time
  std::uint64_t bytes = 0;     ///< cumulative bytes at sample time
};

/// Base class of every scenario simulator.  Owns the simulator clock, the
/// RNG lanes, the delay model, the overlay table, the message ledger and
/// the shared search scratch; exposes the scheduling/bootstrap helpers the
/// scenarios used to copy-paste.
class OverlayEngine {
 public:
  OverlayEngine(const OverlayEngine&) = delete;
  OverlayEngine& operator=(const OverlayEngine&) = delete;

  const core::CompactNeighborTable& overlay() const noexcept {
    return overlay_;
  }
  const net::DelayModel& delay_model() const noexcept { return delay_; }
  des::Simulator& simulator() noexcept { return sim_; }
  std::size_t num_nodes() const noexcept { return overlay_.size(); }

  /// --- sharded parallel execution (off by default) ----------------------
  /// Partitions peers into `n` contiguous shards, each with its own event
  /// queue, clock and RNG lanes, advanced in conservative lookahead
  /// windows on `n` threads (des::ShardedSimulator).  Must be called
  /// before anything is scheduled; `n` must be in [1, num_nodes()].
  /// `window_s` <= 0 picks the delay model's floor (the true minimum
  /// cross-peer delay, hence a safe lookahead).
  ///
  /// Determinism contract (DESIGN.md §1.8): `set_shards(1)` is a no-op —
  /// the serial path is untouched and stays byte-identical to a build
  /// without this call.  For n > 1 the DES layer is deterministic per
  /// shard count, while cross-shard interleaving makes engine-level
  /// metrics statistically — not bitwise — pinned; certify runs with an
  /// attached InvariantChecker.
  void set_shards(std::uint32_t n, double window_s = 0.0);

  /// Number of shards (1 when serial).
  std::uint32_t shards() const noexcept {
    return sharded_ ? sharded_->shards() : 1u;
  }
  /// True when running the sharded parallel path.
  bool parallel() const noexcept { return sharded_ != nullptr; }
  /// Owning shard of peer `u` (contiguous blocks; 0 when serial).
  std::uint32_t shard_of(net::NodeId u) const noexcept {
    return sharded_ ? static_cast<std::uint32_t>(u / shard_block_) : 0u;
  }
  /// Cross-shard posts clamped forward at a window barrier (0 when the
  /// window never exceeded the true minimum delay).
  std::uint64_t lookahead_clamps() const noexcept {
    return sharded_ ? sharded_->lookahead_clamps() : 0u;
  }
  /// Synchronization windows executed (0 when serial).
  std::uint64_t sync_windows() const noexcept {
    return sharded_ ? sharded_->windows() : 0u;
  }

  /// Per-type counts of every message the scenario accounted for.
  const net::MessageStats& traffic() const noexcept { return ledger_.stats(); }
  const MessageLedger& ledger() const noexcept { return ledger_; }

  /// Bootstrap fills that exhausted their attempt budget before reaching
  /// their target degree (summarized through the warning sink at end of
  /// run).
  std::uint64_t bootstrap_underfills() const noexcept {
    return bootstrap_underfills_;
  }

  /// Where engine warnings (bootstrap under-fill, ...) are reported.  The
  /// default sink prints one "warning: ..." line on stderr; tests install
  /// a capturing sink instead.
  using WarningSink = std::function<void(const std::string&)>;
  void set_warning_sink(WarningSink sink) { warning_sink_ = std::move(sink); }

  /// Installs a structured trace hook; every send() reports through it.
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  /// --- fault injection (all off by default: zero draws, zero events) ----
  /// Installs the fault schedule consulted by every transmission.  An
  /// empty plan leaves the run byte-identical to a baseline run.
  void set_fault_plan(FaultPlan plan) {
    fault_plan_ = std::move(plan);
    refresh_fault_active();
  }
  /// Installs the crash process.  A disabled model schedules no events.
  void set_crash_model(const CrashModel& model) {
    crash_model_ = model;
    refresh_fault_active();
  }
  /// Attaches a continuous invariant checker fed from the trace points.
  /// Routes transmissions through the (draw-free when the plan is empty)
  /// traced paths; pass nullptr to detach.
  void attach_checker(InvariantChecker* checker) {
    checker_ = checker;
    refresh_fault_active();
  }

  const FaultPlan& fault_plan() const noexcept { return fault_plan_; }
  const CrashModel& crash_model() const noexcept { return crash_model_; }

  /// The attached checker, or nullptr.  Scenarios use it for per-search
  /// certification (InvariantChecker::check_search_outcome) — the type is
  /// only forward-declared here, so call sites include sim/invariants.h.
  InvariantChecker* checker() const noexcept { return checker_; }

  /// --- flight recorder (off by default: null pointer, zero records) -----
  /// Attaches a flight-recorder sink.  Like attaching a checker, this
  /// routes transmissions through the traced paths — draw-free when the
  /// fault plan is empty, so a traced run replays the baseline trajectory
  /// byte-identically.  Passing nullptr, or a sink whose enabled() is
  /// false (obs::NullSink), detaches: the hot path sees one predicted
  /// branch and zero virtual calls.
  void set_trace_sink(obs::TraceSink* sink) {
    obs_ = (sink != nullptr && sink->enabled()) ? sink : nullptr;
    refresh_fault_active();
  }
  obs::TraceSink* trace_sink() const noexcept { return obs_; }

  /// Enables periodic heartbeat records (events executed, queue
  /// population, wall clock, RSS) every `period_s` simulated seconds.
  /// Off by default — and deliberately opt-in even when tracing is on:
  /// the heartbeat schedules real events, which shifts the queue's
  /// insertion-order tie-breaking and therefore the fingerprint.
  void set_heartbeat_period(double period_s) {
    heartbeat_period_s_ = period_s;
  }

  /// True once `u` crashed.  Dead peers receive nothing: any copy
  /// addressed to them is dropped on arrival.
  bool node_dead(net::NodeId u) const noexcept {
    return u < dead_.size() && dead_[u] != 0;
  }
  /// Crashed peers so far (CrashModel victims plus explicit crash_node).
  std::uint64_t crashes() const noexcept { return crash_count_; }

  /// Kills `u` abruptly, mid-whatever-it-was-doing.  The scenario's
  /// on_peer_crashed hook cancels the victim's own pending activity, but
  /// nobody updates neighbor tables on its behalf: ex-neighbors keep
  /// dangling entries, exactly as after a real ungraceful disconnect.
  void crash_node(net::NodeId u);

  /// Enables periodic traffic sampling every `period_s` seconds (wired to
  /// metrics::TimeSeries bucketing).  Must be called before run; off by
  /// default so ported benches replay byte-identically.
  void set_traffic_sample_period(double period_s) {
    traffic_sample_period_s_ = period_s;
  }
  const std::vector<TrafficSample>& traffic_samples() const noexcept {
    return traffic_samples_;
  }
  /// Message counts bucketed by sample period (empty unless enabled).
  const std::optional<metrics::TimeSeries>& traffic_series() const noexcept {
    return traffic_series_;
  }

  /// --- snapshot/restore (DESIGN.md §1.9) --------------------------------
  /// Arms a mid-run snapshot: the serial horizon loop runs to `at_s`,
  /// writes the full simulation state to `path`, then continues to the
  /// horizon.  The segmented run executes the exact event sequence an
  /// uninterrupted run does (run_until(T) leaves every pending event
  /// strictly later than T), so arming a save never perturbs the
  /// trajectory.  Must be called before run; rejected under --shards > 1.
  void request_snapshot_save(std::string path, double at_s);

  /// Restores a snapshot written by request_snapshot_save into this
  /// freshly constructed simulation.  The scenario name, population and
  /// seed must match the snapshot's identity section — everything the
  /// constructor derives from the config (catalogs, profiles, holdings,
  /// delay classes) is reconstructed, and the snapshot supplies only the
  /// mutable state on top.  The whole file is validated (magic, version,
  /// framing, per-section CRCs) before any state is touched: a corrupt
  /// file throws snap::SnapshotError and leaves the simulation unmodified.
  /// Rejected under --shards > 1.
  void load_snapshot(const std::string& path);

  /// Writes the current state to `path` immediately.  Normally invoked by
  /// the armed request at its boundary; public so tests can checkpoint at
  /// custom points.
  void save_snapshot(const std::string& path);

  /// True when this simulation was restored from a snapshot.  Scenarios
  /// branch on this in run(): skip the initial scheduling draws, register
  /// periodic bodies only (in the exact fresh-run order), and let the
  /// engine replay the snapshot's pending events.
  bool resumed() const noexcept { return resumed_; }

  /// --- open-loop load injection (off by default: zero draws, zero
  /// events, so closed-loop runs stay byte-identical with the layer
  /// compiled in) ---------------------------------------------------------
  /// Arms the open-loop front-end: an external query stream (trace file
  /// or built-in generator with an arrival-rate schedule) is injected on
  /// top of the scenario's own closed-loop workload, through a bounded
  /// per-peer admission queue.  Every arrival/targeting decision draws
  /// from a dedicated load lane (derived via des::hash_seed from the
  /// scenario seed, like the fault lane), never from the master stream.
  /// Must be called before run.  Serial only: rejected with --shards > 1
  /// and mutually exclusive with snapshots (both std::invalid_argument).
  void set_open_loop(load::OpenLoopOptions opts);

  /// True when the open-loop front-end is armed.
  bool open_loop() const noexcept { return load_opts_.enabled; }

  /// Admission/latency accounting of the armed open-loop run (zeros when
  /// the layer is off).  `pending` is filled in at end of run.
  const load::LoadStats& load_stats() const noexcept { return load_stats_; }

  /// --- adversarial & heterogeneous scenario layer (off by default: zero
  /// draws, zero events — baseline runs stay byte-identical with the layer
  /// compiled in; tests/sim/adversary_golden_test.cpp pins this) ----------
  /// Arms the adversary layer: abuser/free-rider roles are drawn on the
  /// dedicated adversary lane when the run starts, the abuse spray /
  /// regional outage / churn storm processes are scheduled, and the
  /// capacity knobs (per-class degree bounds, benefit weights) take
  /// effect.  Must be called before run.  Serial only: rejected with
  /// --shards > 1 and mutually exclusive with snapshots (both
  /// std::invalid_argument; the adversary lane is not serialized).
  void set_adversary(AdversaryPlan plan);

  const AdversaryPlan& adversary_plan() const noexcept {
    return adversary_plan_;
  }
  /// What the layer did (role counts, sprayed queries, outage victims,
  /// storm kicks).  All zero when the layer is off.
  const AdversaryStats& adversary_stats() const noexcept {
    return adversary_stats_;
  }
  /// The abuser blast radius: every message counted while an abuse scope
  /// was ambient (the sprayed query, its flood, its replies).  A strict
  /// subset of ledger(); InvariantChecker::check_abuse certifies the
  /// attribution.
  const MessageLedger& abuse_ledger() const noexcept { return abuse_ledger_; }
  /// The designated abusers (empty until the run starts, and when off).
  const std::vector<net::NodeId>& abusers() const noexcept {
    return abusers_;
  }
  bool is_abuser(net::NodeId u) const noexcept {
    return u < roles_.size() && (roles_[u] & kRoleAbuser) != 0;
  }
  /// True when `u` serves no content (but still issues its query load).
  bool is_free_rider(net::NodeId u) const noexcept {
    return u < roles_.size() && (roles_[u] & kRoleFreeRider) != 0;
  }
  /// Capacity-aware degree target for `u`: the per-class bound when the
  /// plan sets one for `u`'s bandwidth class, `fallback` (the scenario's
  /// configured degree) otherwise.  Applies to run-time fills and
  /// neighbor updates; the construction-time bootstrap predates
  /// set_adversary and keeps the configured degree.
  std::size_t adversary_degree_bound(net::NodeId u,
                                     std::size_t fallback) const noexcept {
    if (!adversary_capacity_) return fallback;
    const auto b =
        adversary_plan_
            .degree_bound[static_cast<int>(delay_.node_class(u))];
    if (b == 0) return fallback;
    return b < fallback ? b : fallback;
  }
  /// Per-class multiplier on the benefit credited for an answer delivered
  /// by `u`; exactly 1.0 when the layer is off (callers may skip the
  /// multiply entirely — the guard keeps the off path float-identical).
  double adversary_benefit_weight(net::NodeId u) const noexcept {
    if (!adversary_capacity_) return 1.0;
    return adversary_plan_
        .benefit_weight[static_cast<int>(delay_.node_class(u))];
  }

  /// --- closed-loop arrival capture (off by default) ----------------------
  /// Records every closed-loop query arrival (time, issuing peer, item)
  /// and writes them to `path` at end of run in the open-loop trace
  /// grammar (`time_s peer item` per line), so a captured run can be
  /// replayed through `--open-loop --load-trace`.  Serial only.
  void set_capture_trace(std::string path);
  /// Closed-loop arrivals captured so far (empty when capture is off).
  std::uint64_t captured_arrivals() const noexcept {
    return captured_.size();
  }

 protected:
  explicit OverlayEngine(EngineConfig cfg);
  ~OverlayEngine() = default;

  /// --- per-shard execution context -------------------------------------
  /// Everything a worker thread may touch without synchronization while
  /// executing its shard's events: RNG lanes (the master stream and every
  /// lane are split per shard, so lane *ownership* — not locking — keeps
  /// draws race-free), the visited-set stamps and flood scratch, the
  /// message ledger (merged canonically at end of run) and the ambient
  /// flight-recorder span.
  struct ShardContext {
    des::Rng master;
    RngLanes lanes;
    des::Rng fault;
    core::VisitStamp stamps;
    core::SearchScratch scratch;
    MessageLedger ledger;
    std::uint32_t current_span = 0;
    ShardContext(des::Rng m, RngLayout layout, des::Rng f, std::size_t n)
        : master(m), lanes(make_lanes(master, layout)), fault(f), stamps(n) {}
  };

  /// The calling thread's shard context, or nullptr on every serial path
  /// (no shards configured, or outside a window — bootstrap, merge).  The
  /// nullptr branch is what keeps `set_shards(1)`-free runs byte-identical:
  /// every routed accessor reduces to the exact pre-sharding member.
  ShardContext* active_ctx() noexcept {
    if (!sharded_) return nullptr;
    const std::uint32_t s = des::ShardedSimulator::current_shard();
    return s == des::kNoShard ? nullptr : &shard_ctx_[s];
  }

  /// --- RNG lanes (routed to the active shard's splits when parallel) ----
  des::Rng& rng() noexcept {
    ShardContext* c = active_ctx();
    return c ? c->master : master_rng_;
  }
  des::Rng& topo_rng() noexcept {
    ShardContext* c = active_ctx();
    if (!c) return *topo_;
    return cfg_.rng_layout == RngLayout::kFourLane ? c->lanes.topo
                                                   : c->master;
  }
  des::Rng& session_rng() noexcept {
    ShardContext* c = active_ctx();
    if (!c) return *session_;
    return cfg_.rng_layout == RngLayout::kFourLane ? c->lanes.session
                                                   : c->master;
  }
  des::Rng& query_rng() noexcept {
    ShardContext* c = active_ctx();
    if (!c) return *query_;
    return cfg_.rng_layout == RngLayout::kFourLane ? c->lanes.query
                                                   : c->master;
  }
  des::Rng& delay_rng() noexcept {
    ShardContext* c = active_ctx();
    return c ? c->lanes.delay : lanes_.delay;
  }
  des::Rng& fault_lane() noexcept {
    ShardContext* c = active_ctx();
    return c ? c->fault : fault_rng_;
  }
  /// The injection lane consulted by serve_injected_query overrides when
  /// they draw a kAnyItem target.  Normally the open-loop layer's
  /// dedicated lane; while the adversary layer serves a sprayed abuse
  /// query it is swapped to the adversary lane, so abuse draws never
  /// perturb the open-loop stream.  Serial only — both layers reject
  /// sharded runs.
  des::Rng& load_lane() noexcept { return *inject_lane_; }

  /// The adversary layer's dedicated decision lane.
  des::Rng& adversary_lane() noexcept { return adversary_rng_; }

  /// Per-search visited stamps / flood scratch (per-shard when parallel:
  /// two concurrent searches on different shards must not share
  /// generations or frontier storage).
  core::VisitStamp& visit_stamps() noexcept {
    ShardContext* c = active_ctx();
    return c ? c->stamps : stamps_;
  }
  core::SearchScratch& search_scratch() noexcept {
    ShardContext* c = active_ctx();
    return c ? c->scratch : scratch_;
  }
  /// The ledger accounting writes go to (per-shard when parallel).
  MessageLedger& ledger_ref() noexcept {
    ShardContext* c = active_ctx();
    return c ? c->ledger : ledger_;
  }

  /// One-way delay sample for a (from, to) transmission, drawn from the
  /// delay lane.
  double sample_delay_s(net::NodeId from, net::NodeId to) {
    return delay_.sample_delay_s(from, to, delay_rng());
  }

  /// --- horizon ---------------------------------------------------------
  double horizon_s() const noexcept { return cfg_.sim_hours * 3600.0; }
  double warmup_s() const noexcept { return cfg_.warmup_hours * 3600.0; }
  /// Simulation time as seen by the calling thread (the active shard's
  /// clock when parallel, the global clock otherwise).
  double now_s() noexcept {
    ShardContext* c = active_ctx();
    return c ? sharded_
                   ->shard(des::ShardedSimulator::current_shard())
                   .now()
             : sim_.now();
  }
  /// True once the warm-up period has elapsed (metrics become reportable).
  bool reporting() noexcept { return now_s() >= warmup_s(); }

  /// Runs the simulator to the configured horizon (scheduling the crash
  /// process first when a CrashModel is enabled); afterwards reports one
  /// warning-sink line if any bootstrap fill was under budget (the
  /// silent-shortfall fix).  Returns events executed.
  ///
  /// With shards configured this drives the windowed parallel protocol
  /// instead: traffic sampling and heartbeats move to the window barriers
  /// (where every worker is parked, so global reads are safe), per-shard
  /// ledgers are folded into ledger_ in canonical shard order afterwards,
  /// and an enabled CrashModel is rejected (cross-shard event cancellation
  /// is not safe under the conservative protocol).
  std::uint64_t run_until_horizon();

  /// --- sharded scheduling ----------------------------------------------
  /// Schedules `cb` on `owner`'s shard after `delay_s` (possibly crossing
  /// shards through the window mailbox).  Serial: plain schedule_in.
  void schedule_for(net::NodeId owner, double delay_s, des::Callback cb) {
    if (!sharded_) {
      sim_.schedule_in(delay_s, std::move(cb));
      return;
    }
    sharded_->post(shard_of(owner), now_s() + (delay_s > 0 ? delay_s : 0),
                   std::move(cb));
  }

  /// Cancellable self-event: `owner`'s own timer (session wake, next
  /// query), scheduled from `owner`'s shard — or from the serial bootstrap
  /// phase — directly into the owning queue.  MUST NOT be called for a
  /// peer on another shard while a window is executing; that is what
  /// schedule_for (non-cancellable, mailbox-routed) is for.
  des::EventId schedule_self(net::NodeId owner, double delay_s,
                             des::Callback cb) {
    if (!sharded_) return sim_.schedule_in(delay_s, std::move(cb));
    return sharded_->shard(shard_of(owner))
        .schedule_in(delay_s, std::move(cb));
  }
  bool cancel_self(net::NodeId owner, des::EventId id) {
    if (!sharded_) return sim_.cancel(id);
    return sharded_->shard(shard_of(owner)).cancel(id);
  }

  /// --- snapshot-keyed scheduling ---------------------------------------
  /// Closures cannot be serialized, so every event that may be pending at
  /// a snapshot boundary is scheduled through a keyed variant: `kind`
  /// (engine kinds below; scenario kinds start at kKeyedUserBase) plus two
  /// integer payloads say how to rebuild the callback, and a seq-to-key
  /// note table joins live queue entries with their keys at save time.
  /// With no snapshot armed the keyed variants collapse to the plain
  /// ones — same draws, same insertion order, zero tracking overhead.
  static constexpr std::uint32_t kKeyedPeriodic = 1;   ///< a = periodic index
  static constexpr std::uint32_t kKeyedCrashTick = 2;  ///< crash-process tick
  static constexpr std::uint32_t kKeyedUserBase = 16;  ///< scenario kinds

  des::EventId schedule_keyed_self(net::NodeId owner, double delay_s,
                                   std::uint32_t kind, std::uint64_t a,
                                   std::uint64_t b, des::Callback cb) {
    const des::EventId id = schedule_self(owner, delay_s, std::move(cb));
    if (!sharded_ && snap_track_) note_keyed(id.seq, kind, a, b);
    return id;
  }
  void schedule_keyed_for(net::NodeId owner, double delay_s,
                          std::uint32_t kind, std::uint64_t a, std::uint64_t b,
                          des::Callback cb) {
    if (sharded_) {
      schedule_for(owner, delay_s, std::move(cb));
      return;
    }
    const des::EventId id = sim_.schedule_in(delay_s, std::move(cb));
    if (snap_track_) note_keyed(id.seq, kind, a, b);
  }
  /// Absolute-time variant (crash process, restore replay); serial only.
  des::EventId schedule_keyed_at(double at_s, std::uint32_t kind,
                                 std::uint64_t a, std::uint64_t b,
                                 des::Callback cb) {
    const des::EventId id = sim_.schedule_at(at_s, std::move(cb));
    if (snap_track_) note_keyed(id.seq, kind, a, b);
    return id;
  }

  /// Splits schedule_every into its two halves so a restored run can
  /// rebuild periodic bodies without re-drawing their start offsets:
  /// registration appends the body to an index-stable table (identical
  /// call order fresh and resumed, hence identical indices), and
  /// start_periodic — fresh runs only — schedules the first keyed tick.
  std::size_t register_periodic(double period_s, std::function<void()> body);
  void start_periodic(std::size_t idx, double first_delay_s);

  /// --- cross-shard critical sections (all no-ops when serial) -----------
  /// RAII guard over the engine-wide reader/writer lock plus the 64
  /// per-peer stripe mutexes.  Lock order (deadlock discipline): the
  /// rwlock is never acquired while holding a stripe; at most one stripe
  /// is held at a time.
  class [[nodiscard]] Section {
   public:
    Section() = default;
    Section(std::shared_mutex* mu, bool exclusive)
        : mu_(mu), exclusive_(exclusive) {
      if (mu_) exclusive_ ? mu_->lock() : mu_->lock_shared();
    }
    Section(Section&& o) noexcept : mu_(o.mu_), exclusive_(o.exclusive_) {
      o.mu_ = nullptr;
    }
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;
    Section& operator=(Section&&) = delete;
    ~Section() {
      if (mu_) exclusive_ ? mu_->unlock() : mu_->unlock_shared();
    }

   private:
    std::shared_mutex* mu_ = nullptr;
    bool exclusive_ = false;
  };

  /// Search-side guard: concurrent searches share the lock (they read the
  /// overlay and peer content, write only shard-local state).  With an
  /// InvariantChecker attached it upgrades to exclusive — the checker
  /// keeps one ambient per-search TTL context, so certified parallel runs
  /// serialize their searches to keep it coherent.
  Section shared_section() noexcept {
    if (!sharded_) return Section();
    return Section(&state_mu_, checker_ != nullptr);
  }
  /// Mutator-side guard: overlay rewires, roster changes, global probes.
  Section exclusive_section() noexcept {
    if (!sharded_) return Section();
    return Section(&state_mu_, true);
  }
  /// Stripe guard for one peer's cross-shard-visible mutable state (LRU
  /// caches, digests): serializes owner writes against remote reads.
  std::unique_lock<std::mutex> peer_section(net::NodeId u) noexcept {
    if (!sharded_) return std::unique_lock<std::mutex>();
    return std::unique_lock<std::mutex>(peer_mu_[u % kPeerStripes]);
  }

  /// --- accounting ------------------------------------------------------
  /// Counts a send; while an abuse scope is ambient the count is mirrored
  /// into the abuse ledger so blast-radius traffic stays attributed (one
  /// always-false predicted branch on every baseline path).
  void count(net::MessageType t, std::uint64_t n = 1,
             std::uint64_t bytes_each = 0) noexcept {
    ledger_ref().count(t, n, bytes_each);
    if (abuse_ambient_) abuse_ledger_.count(t, n, bytes_each);
  }

  /// Unified message dispatch: accounts for the transmission (count +
  /// bytes + optional trace record), samples the propagation delay from
  /// the delay lane and schedules `on_deliver` at the arrival time.
  /// New scenarios build their protocols on this; the ported hot paths
  /// keep their historical inline accounting so the replayed RNG stream
  /// is untouched.  When the fault layer is active the transmission is
  /// routed through it: the plan may drop/duplicate/delay the copy, a
  /// dead receiver drops it on arrival, and every copy's fate is traced.
  template <typename Fn>
  void send(net::NodeId from, net::NodeId to, net::MessageType type,
            Fn&& on_deliver, std::uint64_t bytes = 0) {
    const std::uint64_t b = bytes ? bytes : default_message_bytes(type);
    count(type, 1, b);
    if (fault_active_) {
      send_faulty(from, to, type, std::function<void()>(on_deliver), b);
      return;
    }
    if (trace_) {
      std::unique_lock<std::mutex> lock(obs_mu_, std::defer_lock);
      if (sharded_) lock.lock();
      trace_(TraceEvent{TraceKind::kSend, now_s(), from, to, type, b, -1,
                        abuse_ambient_});
    }
    if (sharded_) {
      schedule_for(to, sample_delay_s(from, to), std::forward<Fn>(on_deliver));
      return;
    }
    sim_.schedule_in(sample_delay_s(from, to), std::forward<Fn>(on_deliver));
  }

  /// Batched unified dispatch for neighbor fan-out: one ledger update, one
  /// timestamp read and one bulk queue insertion cover the whole batch.
  /// `targets` is any random-access range of NodeId; `make_on_deliver(i)`
  /// builds the delivery callback for targets[i].  Delay samples are drawn
  /// from the delay lane in target order and the scheduled events carry
  /// consecutive sequence numbers, so a run using send_batch is
  /// byte-identical to the same run calling send() per target.  When the
  /// fault layer is active every copy still gets an individual fate
  /// (drop/duplicate/delay, dead-receiver check) through the per-copy
  /// faulty path.
  template <typename Targets, typename MakeCb>
  void send_batch(net::NodeId from, const Targets& targets,
                  net::MessageType type, MakeCb&& make_on_deliver,
                  std::uint64_t bytes_each = 0) {
    const std::size_t n = std::size(targets);
    if (n == 0) return;
    const std::uint64_t b =
        bytes_each ? bytes_each : default_message_bytes(type);
    count(type, n, b);
    if (fault_active_) {
      for (std::size_t i = 0; i < n; ++i)
        send_faulty(from, targets[i], type,
                    std::function<void()>(make_on_deliver(i)), b);
      return;
    }
    const double now = now_s();
    if (trace_) {
      std::unique_lock<std::mutex> lock(obs_mu_, std::defer_lock);
      if (sharded_) lock.lock();
      for (std::size_t i = 0; i < n; ++i)
        trace_(TraceEvent{TraceKind::kSend, now, from, targets[i], type, b,
                          -1, abuse_ambient_});
    }
    if (sharded_) {
      // Per-target routing: each copy goes to its receiver's shard (the
      // bulk single-queue insert below assumes one destination queue).
      for (std::size_t i = 0; i < n; ++i)
        schedule_for(targets[i], sample_delay_s(from, targets[i]),
                     make_on_deliver(i));
      return;
    }
    sim_.queue().schedule_batch(n, [&](std::size_t i) {
      const double d = sample_delay_s(from, targets[i]);
      return std::pair<des::SimTime, des::Callback>(d > 0 ? now + d : now,
                                                    make_on_deliver(i));
    });
  }

  /// --- fault layer ------------------------------------------------------
  /// True when any fault machinery is engaged (non-empty plan, enabled
  /// crash model, or attached checker).  The ported hot paths branch on
  /// this once per search so baseline runs never pay for the layer.
  bool fault_layer_active() const noexcept { return fault_active_; }

  /// Resets the invariant checker's TTL context for one search (or one
  /// iterative-deepening cycle) with hop budget `max_ttl`.
  void begin_faulty_search(int max_ttl);

  /// Resolves the fate of one synchronous transmission (the eagerly
  /// expanded search paths): consults the plan, drops copies addressed to
  /// dead peers, updates the ledger's fate counters and emits trace
  /// records.  Does NOT count the send itself — callers keep their
  /// historical bulk accounting.
  core::TransmitResult transmit(net::MessageType type, net::NodeId from,
                                net::NodeId to, int ttl);

  /// TransmitFn adapter binding the engine's fault layer to the
  /// transmit-aware core searches (core::flood_search and friends).
  struct Transmit {
    OverlayEngine* engine;
    void begin(int max_ttl) const { engine->begin_faulty_search(max_ttl); }
    core::TransmitResult operator()(net::MessageType type, net::NodeId from,
                                    net::NodeId to, int ttl) const {
      return engine->transmit(type, from, to, ttl);
    }
  };
  Transmit transmit_fn() noexcept { return Transmit{this}; }

  /// TransmitFn adapter that collapses the fault/no-fault branch every
  /// search call site used to duplicate: when `active` is false it is
  /// byte-identical to core::ReliableTransmit (default verdict, zero
  /// draws, no checker TTL context); when true it is Transmit.  Call
  /// sites bind search_transmit() once and stop forking whole dispatch
  /// expressions on fault_layer_active().
  struct MaybeFaultyTransmit {
    OverlayEngine* engine;
    bool active;
    void begin(int max_ttl) const {
      if (active) engine->begin_faulty_search(max_ttl);
    }
    core::TransmitResult operator()(net::MessageType type, net::NodeId from,
                                    net::NodeId to, int ttl) const {
      if (!active) return {};
      return engine->transmit(type, from, to, ttl);
    }
  };
  MaybeFaultyTransmit search_transmit() noexcept {
    return MaybeFaultyTransmit{this, fault_layer_active()};
  }

  /// --- search spans (flight recorder) ----------------------------------
  /// Opens a search span: emits the kSearchBegin record and makes the new
  /// id the ambient span stamped on every traced record until the span
  /// closes.  Returns 0 — and records nothing — when no sink is attached,
  /// so scenarios thread the id through unconditionally.  Never draws.
  std::uint32_t obs_search_begin(net::NodeId initiator, int max_ttl,
                                 std::uint64_t item);

  /// Closes span `span` with the scenario's verdict (no-op when span is
  /// 0).  `first_hit_hop` < 0 means the search missed;
  /// `first_result_delay_s` < 0 when no delay is defined (miss, or a
  /// protocol without reply latency).  `best_score` > 0 only for ranked
  /// query classes (exact-match searches pass the default and their
  /// records stay byte-identical).  Never draws.
  void obs_search_end(std::uint32_t span, net::NodeId initiator,
                      std::uint64_t results, int first_hit_hop,
                      double first_result_delay_s, double best_score = 0.0);

  /// --- open-loop injection hook ----------------------------------------
  /// Serves one injected query at `peer` synchronously: runs the
  /// scenario's search machinery (messages accounted through the ledger,
  /// spans visible in the flight recorder) and returns the service
  /// latency plus the hit verdict.  `item` is a scenario-defined object
  /// id, or load::kAnyItem to draw one from the workload model using the
  /// load lane.  Called only while the open-loop layer is armed; the
  /// default fails closed for scenarios without an override.
  virtual load::Served serve_injected_query(net::NodeId peer,
                                            std::uint64_t item);

  /// Called exactly once per crash_node(), before any further event runs.
  /// Scenarios cancel the victim's own pending activity (its queries, its
  /// session timer) here — and must NOT touch the overlay: dangling
  /// neighbor entries are the point of an ungraceful crash.
  virtual void on_peer_crashed(net::NodeId /*u*/) {}

  /// --- churn-storm hook -------------------------------------------------
  /// Delivers one forced log-off: the scenario picks a currently on-line
  /// peer (uniformly, drawing only from `lane`), logs it off immediately,
  /// and reschedules its comeback after a Pareto-tailed offline time of
  /// mean `offline_mean_s` and shape `shape` sampled from `lane`.  Returns
  /// true when a peer was actually kicked (false when nobody is on-line,
  /// or the scenario has no session model — the default).  Must draw
  /// exclusively from `lane`, never from the session/master streams.
  virtual bool adversary_churn_kick(des::Rng& /*lane*/,
                                    double /*offline_mean_s*/,
                                    double /*shape*/) {
    return false;
  }

  /// --- closed-loop capture hook ----------------------------------------
  /// Scenarios call this at their closed-loop query-issue site (one call
  /// per issued search, before the search runs).  One predicted branch
  /// when capture is off.
  void capture_query_arrival(net::NodeId peer, std::uint64_t item) {
    if (capture_armed_) captured_.push_back({now_s(), peer, item});
  }

  /// --- scenario snapshot hooks -----------------------------------------
  /// Serialize/restore the scenario's own mutable state (caches, stats,
  /// partial results).  Immutable construction-time state (catalogs,
  /// holdings, profiles, initial digests) is deliberately NOT written: the
  /// restoring side reconstructs it by running the constructor with the
  /// same config.  The defaults fail closed for scenarios that never
  /// implemented checkpointing.
  virtual void save_domain(snap::Writer::Out& out) const;
  virtual void load_domain(snap::Reader::In& in);

  /// Rebuilds the callback for one pending-event record from the snapshot
  /// and schedules it at absolute time `t` (through schedule_keyed_at, so
  /// a later save sees it again).  Scenario overrides handle their own
  /// kinds (>= kKeyedUserBase) and defer engine kinds to this base
  /// implementation; an unknown kind throws snap::SnapshotError.
  virtual void restore_keyed_event(double t, std::uint32_t kind,
                                   std::uint64_t a, std::uint64_t b);

  /// Reports one warning line through the sink (default: stderr).
  void warn(const std::string& message);

  /// --- periodic scheduling --------------------------------------------
  /// Runs `fn` after `first_delay_s`, then every `period_s` forever.
  /// Equivalent to the trailing-self-reschedule pattern the scenarios used
  /// (body runs, then reschedules last): the callback invokes `fn` and
  /// then schedules the next tick, so event insertion order — and with it
  /// the queue's insertion-order tie-breaking — is unchanged as long as
  /// `fn` itself schedules nothing after its own old reschedule point
  /// (true of every ported periodic body).
  ///
  /// Sharded: the tick lands on shard 0's queue and the body runs under
  /// the exclusive section — a global periodic (an overlay probe, a decay
  /// pass) reads state owned by every shard.  Per-peer periodics should
  /// use schedule_every_for instead and stay lock-free on their own shard.
  void schedule_every(double first_delay_s, double period_s,
                      std::function<void()> fn);

  /// Per-peer periodic: like schedule_every but owned by `owner`'s shard
  /// (cache refresh, digest rebuild, exploration).  The body runs on the
  /// owning shard with no engine lock; guard any cross-peer touches.
  void schedule_every_for(net::NodeId owner, double first_delay_s,
                          double period_s, std::function<void()> fn);

  /// --- bootstrap -------------------------------------------------------
  /// The shared attempt budget of the random bootstrap: four probes per
  /// outgoing slot, the constant all scenarios used.
  int default_bootstrap_attempts() const noexcept {
    return 4 * static_cast<int>(cfg_.out_capacity);
  }

  /// The deduplicated `attempts = 4 * num_neighbors` random-fill loop:
  /// draws candidates from `pick()` until `u`'s outgoing list holds
  /// `target` entries, is full, or the budget is spent.  Self-links and
  /// repeat picks consume an attempt without forming a link (exactly the
  /// historical behaviour — the loops this replaces either pre-checked
  /// `has_out` or let link() fail; both consume the draw).  `on_link` runs
  /// once per link formed.  Exhausting the budget short of the target is
  /// recorded and summarized at end of run instead of passing silently.
  template <typename PickFn, typename OnLinkFn>
  void fill_random_neighbors(net::NodeId u, std::size_t target, int attempts,
                             PickFn&& pick, OnLinkFn&& on_link) {
    const auto lists = overlay_.lists(u);  // value proxy, reads stay live
    while (lists.out().size() < target && !lists.out_full() &&
           attempts-- > 0) {
      const net::NodeId v = pick();
      if (v == u || lists.has_out(v)) continue;
      // Capacity-aware refusal: under a symmetric relation the link grows
      // v's list too, so a candidate at its class degree bound declines
      // the probe (consuming the attempt, like any failed link).  Inert
      // when the adversary layer is off — link()'s own table-full check
      // is then the only limit.
      if (adversary_capacity_ &&
          overlay_.lists(v).out().size() >=
              adversary_degree_bound(
                  v, std::numeric_limits<std::size_t>::max()))
        continue;
      if (overlay_.link(u, v)) on_link();  // fails harmlessly if v is full
    }
    if (lists.out().size() < target && !lists.out_full())
      ++bootstrap_underfills_;
  }

  /// Draws each node's initial on-line state — one lane draw per node in
  /// node order — and returns the on-line subset in that order.
  template <typename DrawFn>
  std::vector<net::NodeId> draw_initial_online(DrawFn&& initially_online) {
    std::vector<net::NodeId> online;
    for (net::NodeId u = 0; u < num_nodes(); ++u)
      if (initially_online(u)) online.push_back(u);
    return online;
  }

  /// ChurnModel-driven variant: one Bernoulli per node from `lane`.
  std::vector<net::NodeId> draw_initial_online(const ChurnModel& churn,
                                               des::Rng& lane) {
    return draw_initial_online([&](net::NodeId) {
      return churn.initially_online(lane);
    });
  }

  const EngineConfig& engine_config() const noexcept { return cfg_; }

  /// --- shared state (scenario classes reach these directly) ------------
  EngineConfig cfg_;
  des::Rng master_rng_;
  RngLanes lanes_;
  net::DelayModel delay_;
  core::CompactNeighborTable overlay_;
  core::VisitStamp stamps_;     ///< per-search visited set
  core::SearchScratch scratch_; ///< flood frontier reuse
  des::Simulator sim_;
  MessageLedger ledger_;

 private:
  void schedule_periodic_for(net::NodeId owner, double delay_s,
                             double period_s,
                             std::shared_ptr<std::function<void()>> fn);
  void sample_traffic();

  /// --- snapshot plumbing ------------------------------------------------
  struct KeyedNote {
    std::uint32_t kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  struct PendingRecord {
    double t = 0.0;
    std::uint32_t kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  struct Periodic {
    double period_s = 0.0;
    std::function<void()> body;
  };

  void note_keyed(std::uint64_t seq, std::uint32_t kind, std::uint64_t a,
                  std::uint64_t b);
  /// Drops notes whose events already fired (amortized: rebuilds from the
  /// live queue when the table outgrows twice the pending population).
  void sweep_keyed_notes();
  void run_periodic_tick(std::size_t idx);
  void run_crash_tick();
  /// Re-schedules the snapshot's pending events after the resumed run has
  /// registered its periodics; validates the registration against the
  /// saved table first (count and periods must match).
  void replay_restored_events();
  void write_engine_core(snap::Writer::Out& out);
  void write_overlay(snap::Writer::Out& out);
  void write_events(snap::Writer::Out& out);
  void read_engine_core(snap::Reader::In& in);
  void read_overlay(snap::Reader::In& in);
  void read_events(snap::Reader::In& in);

  /// Window-barrier work for parallel runs: due traffic samples and
  /// heartbeats (every worker is parked, so global reads are safe).
  void on_barrier(double wend);
  /// Folds per-shard ledgers into ledger_ in canonical shard order.
  void merge_shard_ledgers();
  /// Cumulative message/byte totals across the engine ledger and every
  /// shard ledger (only meaningful at a barrier or after the run).
  std::pair<std::uint64_t, std::uint64_t> ledger_totals() const noexcept;

  /// Async-path fate resolution behind send(): plan decision, per-copy
  /// delivery events, dead-receiver drops, fate traces.  The ambient abuse
  /// flag is captured at send time and re-established around the delayed
  /// fate (and the delivery callback's cascade) so asynchronous copies stay
  /// attributed to their abuser.
  void send_faulty(net::NodeId from, net::NodeId to, net::MessageType type,
                   std::function<void()> on_deliver, std::uint64_t bytes);
  void deliver_copy(double delay_s, net::NodeId from, net::NodeId to,
                    net::MessageType type, std::uint64_t bytes, bool abuse,
                    std::function<void()> on_deliver);

  /// Emits `copies` identical trace records to the checker and the hook.
  void trace_event(TraceKind kind, net::NodeId from, net::NodeId to,
                   net::MessageType type, std::uint64_t bytes, int ttl,
                   std::uint64_t copies);

  /// Emits one flight-recorder record for `copies` identical copies.
  void obs_record(obs::RecordKind kind, net::NodeId from, net::NodeId to,
                  net::MessageType type, std::uint64_t bytes, int ttl,
                  std::uint64_t copies);
  void emit_heartbeat();

  /// The traced paths serve three consumers: the fault plan, the
  /// invariant checker and the flight recorder.  All three ride the same
  /// branch because an empty-plan traced run is draw-free and therefore
  /// byte-identical to the fast path.
  void refresh_fault_active() noexcept {
    fault_active_ = !fault_plan_.empty() || crash_model_.enabled() ||
                    checker_ != nullptr || obs_ != nullptr;
  }
  void schedule_crash_process();
  void schedule_next_crash(double at_s);

  /// --- adversary machinery (serial only) --------------------------------
  /// RAII abuse scope: flips abuse_ambient_ on for the duration (when
  /// `engage`), restoring the previous value on exit.  Everything counted,
  /// traced or fate-resolved inside the scope is attributed to the abuser.
  class [[nodiscard]] ScopedAbuse {
   public:
    ScopedAbuse(OverlayEngine* e, bool engage) : e_(engage ? e : nullptr) {
      if (e_) {
        prev_ = e_->abuse_ambient_;
        e_->abuse_ambient_ = true;
      }
    }
    ScopedAbuse(const ScopedAbuse&) = delete;
    ScopedAbuse& operator=(const ScopedAbuse&) = delete;
    ~ScopedAbuse() {
      if (e_) e_->abuse_ambient_ = prev_;
    }

   private:
    OverlayEngine* e_ = nullptr;
    bool prev_ = false;
  };

  /// Draws the abuser/free-rider roles and schedules the abuse spray, the
  /// regional outage and the churn storm.  Called once at the top of the
  /// serial horizon loop; zero draws and zero events when the plan is
  /// disabled.
  void arm_adversary();
  void schedule_next_abuse(double from_s);
  void run_abuse_event();
  void run_regional_outage();
  void schedule_next_storm_kick(double from_s);
  void run_storm_kick();
  void write_capture_file();

  /// --- open-loop machinery (serial only) --------------------------------
  void arm_open_loop();
  void schedule_next_generated_arrival(double from_s);
  void schedule_next_trace_arrival();
  void handle_load_arrival(net::NodeId peer, std::uint64_t item);
  void start_load_service(net::NodeId peer);
  void finish_load_service(net::NodeId peer, double arrival_s, bool hit);
  void shed_load_queue(net::NodeId peer);
  void sample_load_queues();

  des::Rng* topo_ = nullptr;
  des::Rng* session_ = nullptr;
  des::Rng* query_ = nullptr;
  TraceHook trace_;
  WarningSink warning_sink_;
  double traffic_sample_period_s_ = 0.0;
  std::vector<TrafficSample> traffic_samples_;
  std::optional<metrics::TimeSeries> traffic_series_;
  std::uint64_t bootstrap_underfills_ = 0;
  bool underfill_reported_ = false;

  /// Fault-layer state.  The decision lane is derived via make_fault_lane,
  /// never split off the master stream, so engaging the layer cannot
  /// perturb the baseline RNG trajectory.
  FaultPlan fault_plan_;
  CrashModel crash_model_;
  InvariantChecker* checker_ = nullptr;
  des::Rng fault_rng_;
  std::vector<char> dead_;
  std::uint64_t crash_count_ = 0;
  bool fault_active_ = false;

  /// Open-loop load state.  The lane is derived (never split) from the
  /// scenario seed; with the layer off nothing here schedules events or
  /// draws, which is the closed-loop byte-identity half of the contract.
  load::OpenLoopOptions load_opts_;
  des::Rng load_rng_;
  load::LoadStats load_stats_;
  std::vector<load::PeerQueue> load_queues_;
  std::size_t load_trace_idx_ = 0;
  std::uint64_t load_live_depth_ = 0;  ///< queued + in-service, all peers

  /// Adversary-layer state.  The decision lane is derived (never split)
  /// from the scenario seed in set_adversary; with the plan disabled
  /// nothing here draws or schedules, which is the byte-identity half of
  /// the contract.  roles_ stays empty until arm_adversary runs.
  static constexpr std::uint8_t kRoleAbuser = 1;
  static constexpr std::uint8_t kRoleFreeRider = 2;
  AdversaryPlan adversary_plan_;
  AdversaryStats adversary_stats_;
  MessageLedger abuse_ledger_;
  des::Rng adversary_rng_;
  std::vector<std::uint8_t> roles_;
  std::vector<net::NodeId> abusers_;
  bool abuse_ambient_ = false;
  bool adversary_capacity_ = false;  ///< capacity knobs engaged
  /// Where serve_injected_query's kAnyItem draws come from: the load lane
  /// normally, the adversary lane while serving a sprayed abuse query.
  des::Rng* inject_lane_ = &load_rng_;

  /// Closed-loop capture state (off: one dead branch per issued query).
  struct CapturedArrival {
    double t = 0.0;
    net::NodeId peer = net::kInvalidNode;
    std::uint64_t item = 0;
  };
  std::string capture_path_;
  bool capture_armed_ = false;
  std::vector<CapturedArrival> captured_;

  /// Flight-recorder state.  `obs_` is non-null only while an *enabled*
  /// sink is attached; span ids are issued 1-based so 0 means "no span".
  /// The span counter is atomic because parallel shards open spans
  /// concurrently; serial runs see the identical sequence of ids.
  obs::TraceSink* obs_ = nullptr;
  std::atomic<std::uint32_t> next_span_{0};
  std::uint32_t current_span_ = 0;
  double heartbeat_period_s_ = 0.0;
  double heartbeat_wall_start_s_ = 0.0;

  /// Sharded-execution state.  Null/empty on the serial path: every
  /// routed accessor then collapses to the original member, which is the
  /// byte-identity half of the determinism contract.
  static constexpr std::size_t kPeerStripes = 64;
  std::unique_ptr<des::ShardedSimulator> sharded_;
  std::vector<ShardContext> shard_ctx_;
  net::NodeId shard_block_ = 0;  ///< peers per shard (contiguous blocks)
  std::shared_mutex state_mu_;   ///< searches shared / mutators exclusive
  std::array<std::mutex, kPeerStripes> peer_mu_;
  std::mutex obs_mu_;  ///< trace hook + checker + sink, parallel only
  double next_traffic_sample_s_ = 0.0;
  double next_heartbeat_s_ = 0.0;

  /// Snapshot state.  All empty/false on runs that never arm a snapshot,
  /// so the keyed scheduling variants reduce to the plain ones.
  std::vector<Periodic> periodics_;
  std::unordered_map<std::uint64_t, KeyedNote> keyed_notes_;
  std::vector<PendingRecord> restored_events_;
  std::vector<double> restored_periods_;
  std::string save_path_;
  double save_at_s_ = 0.0;
  bool save_requested_ = false;
  bool snap_track_ = false;
  bool resumed_ = false;
  /// Whether the saved run carried an armed crash process.  A resumed run
  /// that arms one when this is false (warm-start fault forks) starts the
  /// process from the restored clock; when true the restored crash tick —
  /// or its absence, if the chain had already ended — is authoritative.
  bool saved_crash_armed_ = false;
};

}  // namespace dsf::sim
