#pragma once

// The shared overlay-engine layer: everything the four scenario simulators
// used to re-implement — RNG lane splitting, the delay model, the overlay
// relation table, message accounting, bootstrap helpers, periodic
// scheduling and horizon control — owned by one base class.  A scenario
// composes/subclasses OverlayEngine, keeps only its domain state (catalogs,
// caches, holdings) and its event handlers, and inherits the rest.
//
// Determinism contract: the engine constructs its members in exactly the
// order the hand-rolled simulators did (master RNG → lane splits → delay
// model → overlay), so a fixed seed replays the exact pre-refactor
// trajectory.  Helpers that could perturb the event or RNG stream
// (schedule_every, fill_random_neighbors, draw_initial_online) are
// documented with the equivalence argument they rely on.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/relations.h"
#include "core/flood_search.h"
#include "core/visit_stamp.h"
#include "des/rng.h"
#include "des/simulator.h"
#include "metrics/time_series.h"
#include "net/delay_model.h"
#include "net/message.h"
#include "net/node_id.h"
#include "sim/policy.h"
#include "sim/validate.h"

namespace dsf::sim {

/// How the engine carves RNG lanes out of the master stream.  Both layouts
/// predate the engine; preserving them bit-for-bit is what keeps every
/// figure bench byte-identical across the refactor.
enum class RngLayout : std::uint8_t {
  /// One split for the delay lane; topology/session/query draws come
  /// straight from the master stream (diglib, olap, webcache).
  kCompact,
  /// Four splits in fixed order — topology, session, query, delay — then
  /// the delay model consumes the master stream (gnutella).
  kFourLane,
};

/// Everything the engine needs to stand up the shared scaffolding.  Built
/// by each scenario's `engine_config(const Config&)`, which also runs the
/// shared validation (sim/validate.h) *before* any member is constructed —
/// a degenerate divisor must never reach a Zipf table or a modulo.
struct EngineConfig {
  std::string name;  ///< scenario tag for diagnostics ("gnutella", ...)
  std::size_t num_nodes = 0;
  std::uint64_t seed = 0;
  RngLayout rng_layout = RngLayout::kCompact;
  core::RelationKind relation = core::RelationKind::kAsymmetric;
  std::size_t out_capacity = 0;
  std::size_t in_capacity = 0;
  double sim_hours = 0.0;
  double warmup_hours = 0.0;
  net::DelayModelParams delay_params{};
};

/// The engine's RNG lanes.  Unused lanes (compact layout) stay at their
/// default seed and are never read — the accessors alias the master stream
/// instead.
struct RngLanes {
  des::Rng topo;
  des::Rng session;
  des::Rng query;
  des::Rng delay;
};

/// Splits lanes off `master` per the layout.  Order of splits is part of
/// the determinism contract (see RngLayout).
RngLanes make_lanes(des::Rng& master, RngLayout layout);

/// Representative wire size of one message of type `t` in bytes, used for
/// byte-level traffic accounting (counts were always tracked; bytes let a
/// scenario report bandwidth, not just message counts).
std::uint64_t default_message_bytes(net::MessageType t);

/// Per-type message counts *and* bytes.  Wraps net::MessageStats so ported
/// scenarios keep publishing the same `traffic` object they always did.
class MessageLedger {
 public:
  /// Counts `n` messages of type `t`; `bytes_each` of 0 means "use the
  /// default wire size for this type".
  void count(net::MessageType t, std::uint64_t n = 1,
             std::uint64_t bytes_each = 0) noexcept {
    stats_.count(t, n);
    bytes_[static_cast<int>(t)] +=
        n * (bytes_each ? bytes_each : default_message_bytes(t));
  }

  const net::MessageStats& stats() const noexcept { return stats_; }

  std::uint64_t bytes(net::MessageType t) const noexcept {
    return bytes_[static_cast<int>(t)];
  }

  std::uint64_t total_bytes() const noexcept {
    std::uint64_t sum = 0;
    for (auto b : bytes_) sum += b;
    return sum;
  }

 private:
  net::MessageStats stats_;
  std::array<std::uint64_t, net::kNumMessageTypes> bytes_{};
};

/// One structured trace record, emitted per send() when a hook is set.
struct TraceEvent {
  double time_s = 0.0;
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;
  net::MessageType type = net::MessageType::kQuery;
  std::uint64_t bytes = 0;
};
using TraceHook = std::function<void(const TraceEvent&)>;

/// One periodic traffic sample (enable via set_traffic_sample_period).
struct TrafficSample {
  double time_s = 0.0;
  std::uint64_t messages = 0;  ///< cumulative count at sample time
  std::uint64_t bytes = 0;     ///< cumulative bytes at sample time
};

/// Base class of every scenario simulator.  Owns the simulator clock, the
/// RNG lanes, the delay model, the overlay table, the message ledger and
/// the shared search scratch; exposes the scheduling/bootstrap helpers the
/// scenarios used to copy-paste.
class OverlayEngine {
 public:
  OverlayEngine(const OverlayEngine&) = delete;
  OverlayEngine& operator=(const OverlayEngine&) = delete;

  const core::NeighborTable& overlay() const noexcept { return overlay_; }
  const net::DelayModel& delay_model() const noexcept { return delay_; }
  des::Simulator& simulator() noexcept { return sim_; }
  std::size_t num_nodes() const noexcept { return overlay_.size(); }

  /// Per-type counts of every message the scenario accounted for.
  const net::MessageStats& traffic() const noexcept { return ledger_.stats(); }
  const MessageLedger& ledger() const noexcept { return ledger_; }

  /// Bootstrap fills that exhausted their attempt budget before reaching
  /// their target degree (summarized on stderr at end of run).
  std::uint64_t bootstrap_underfills() const noexcept {
    return bootstrap_underfills_;
  }

  /// Installs a structured trace hook; every send() reports through it.
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  /// Enables periodic traffic sampling every `period_s` seconds (wired to
  /// metrics::TimeSeries bucketing).  Must be called before run; off by
  /// default so ported benches replay byte-identically.
  void set_traffic_sample_period(double period_s) {
    traffic_sample_period_s_ = period_s;
  }
  const std::vector<TrafficSample>& traffic_samples() const noexcept {
    return traffic_samples_;
  }
  /// Message counts bucketed by sample period (empty unless enabled).
  const std::optional<metrics::TimeSeries>& traffic_series() const noexcept {
    return traffic_series_;
  }

 protected:
  explicit OverlayEngine(EngineConfig cfg);
  ~OverlayEngine() = default;

  /// --- RNG lanes -------------------------------------------------------
  des::Rng& rng() noexcept { return master_rng_; }
  des::Rng& topo_rng() noexcept { return *topo_; }
  des::Rng& session_rng() noexcept { return *session_; }
  des::Rng& query_rng() noexcept { return *query_; }
  des::Rng& delay_rng() noexcept { return lanes_.delay; }

  /// One-way delay sample for a (from, to) transmission, drawn from the
  /// delay lane.
  double sample_delay_s(net::NodeId from, net::NodeId to) {
    return delay_.sample_delay_s(from, to, lanes_.delay);
  }

  /// --- horizon ---------------------------------------------------------
  double horizon_s() const noexcept { return cfg_.sim_hours * 3600.0; }
  double warmup_s() const noexcept { return cfg_.warmup_hours * 3600.0; }
  /// True once the warm-up period has elapsed (metrics become reportable).
  bool reporting() const noexcept { return sim_.now() >= warmup_s(); }

  /// Runs the simulator to the configured horizon; afterwards prints one
  /// stderr summary line if any bootstrap fill was under budget (the
  /// silent-shortfall fix).  Returns events executed.
  std::uint64_t run_until_horizon();

  /// --- accounting ------------------------------------------------------
  void count(net::MessageType t, std::uint64_t n = 1,
             std::uint64_t bytes_each = 0) noexcept {
    ledger_.count(t, n, bytes_each);
  }

  /// Unified message dispatch: accounts for the transmission (count +
  /// bytes + optional trace record), samples the propagation delay from
  /// the delay lane and schedules `on_deliver` at the arrival time.
  /// New scenarios build their protocols on this; the ported hot paths
  /// keep their historical inline accounting so the replayed RNG stream
  /// is untouched.
  template <typename Fn>
  void send(net::NodeId from, net::NodeId to, net::MessageType type,
            Fn&& on_deliver, std::uint64_t bytes = 0) {
    const std::uint64_t b = bytes ? bytes : default_message_bytes(type);
    ledger_.count(type, 1, b);
    if (trace_) trace_(TraceEvent{sim_.now(), from, to, type, b});
    sim_.schedule_in(sample_delay_s(from, to), std::forward<Fn>(on_deliver));
  }

  /// --- periodic scheduling --------------------------------------------
  /// Runs `fn` after `first_delay_s`, then every `period_s` forever.
  /// Equivalent to the trailing-self-reschedule pattern the scenarios used
  /// (body runs, then reschedules last): the callback invokes `fn` and
  /// then schedules the next tick, so event insertion order — and with it
  /// the queue's insertion-order tie-breaking — is unchanged as long as
  /// `fn` itself schedules nothing after its own old reschedule point
  /// (true of every ported periodic body).
  void schedule_every(double first_delay_s, double period_s,
                      std::function<void()> fn);

  /// --- bootstrap -------------------------------------------------------
  /// The shared attempt budget of the random bootstrap: four probes per
  /// outgoing slot, the constant all scenarios used.
  int default_bootstrap_attempts() const noexcept {
    return 4 * static_cast<int>(cfg_.out_capacity);
  }

  /// The deduplicated `attempts = 4 * num_neighbors` random-fill loop:
  /// draws candidates from `pick()` until `u`'s outgoing list holds
  /// `target` entries, is full, or the budget is spent.  Self-links and
  /// repeat picks consume an attempt without forming a link (exactly the
  /// historical behaviour — the loops this replaces either pre-checked
  /// `has_out` or let link() fail; both consume the draw).  `on_link` runs
  /// once per link formed.  Exhausting the budget short of the target is
  /// recorded and summarized at end of run instead of passing silently.
  template <typename PickFn, typename OnLinkFn>
  void fill_random_neighbors(net::NodeId u, std::size_t target, int attempts,
                             PickFn&& pick, OnLinkFn&& on_link) {
    auto& lists = overlay_.lists(u);
    while (lists.out().size() < target && !lists.out_full() &&
           attempts-- > 0) {
      const net::NodeId v = pick();
      if (v == u || lists.has_out(v)) continue;
      if (overlay_.link(u, v)) on_link();  // fails harmlessly if v is full
    }
    if (lists.out().size() < target && !lists.out_full())
      ++bootstrap_underfills_;
  }

  /// Draws each node's initial on-line state — one lane draw per node in
  /// node order — and returns the on-line subset in that order.
  template <typename DrawFn>
  std::vector<net::NodeId> draw_initial_online(DrawFn&& initially_online) {
    std::vector<net::NodeId> online;
    for (net::NodeId u = 0; u < num_nodes(); ++u)
      if (initially_online(u)) online.push_back(u);
    return online;
  }

  /// ChurnModel-driven variant: one Bernoulli per node from `lane`.
  std::vector<net::NodeId> draw_initial_online(const ChurnModel& churn,
                                               des::Rng& lane) {
    return draw_initial_online([&](net::NodeId) {
      return churn.initially_online(lane);
    });
  }

  const EngineConfig& engine_config() const noexcept { return cfg_; }

  /// --- shared state (scenario classes reach these directly) ------------
  EngineConfig cfg_;
  des::Rng master_rng_;
  RngLanes lanes_;
  net::DelayModel delay_;
  core::NeighborTable overlay_;
  core::VisitStamp stamps_;     ///< per-search visited set
  core::SearchScratch scratch_; ///< flood frontier reuse
  des::Simulator sim_;
  MessageLedger ledger_;

 private:
  void schedule_periodic(double delay_s, double period_s,
                         std::shared_ptr<std::function<void()>> fn);
  void sample_traffic();

  des::Rng* topo_ = nullptr;
  des::Rng* session_ = nullptr;
  des::Rng* query_ = nullptr;
  TraceHook trace_;
  double traffic_sample_period_s_ = 0.0;
  std::vector<TrafficSample> traffic_samples_;
  std::optional<metrics::TimeSeries> traffic_series_;
  std::uint64_t bootstrap_underfills_ = 0;
  bool underfill_reported_ = false;
};

}  // namespace dsf::sim
