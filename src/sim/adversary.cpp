#include "sim/adversary.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace dsf::sim {

namespace {

// Dedicated stream salt for the adversary lane.  Distinct from the fault
// lane (0xfa171a7e'0000'0002) and the load lane (0x6c6f'6164'00000000) so
// the three layers never share randomness.
constexpr std::uint64_t kAdversaryStream = 0xad5e7a11'00000001ULL;

void check_fraction(double v, const char* name) {
  if (!(v >= 0.0 && v <= 1.0))
    throw std::invalid_argument(std::string("adversary: ") + name +
                                " must be in [0, 1], got " +
                                std::to_string(v));
}

void check_rate(double v, const char* name) {
  if (!(v >= 0.0) || !std::isfinite(v))
    throw std::invalid_argument(std::string("adversary: ") + name +
                                " must be finite and >= 0, got " +
                                std::to_string(v));
}

void check_window(double start_s, double end_s, const char* name) {
  if (!(start_s >= 0.0) || std::isnan(end_s) || end_s < start_s)
    throw std::invalid_argument(std::string("adversary: ") + name +
                                " window is inverted or negative [" +
                                std::to_string(start_s) + ", " +
                                std::to_string(end_s) + ")");
}

}  // namespace

void AdversaryPlan::validate() const {
  check_fraction(abuser_fraction, "abuser fraction");
  check_rate(abuse_rate_per_s, "abuse rate");
  check_window(abuse_start_s, abuse_end_s, "abuse");
  if (abusers_enabled() && abuser_fraction >= 1.0)
    throw std::invalid_argument(
        "adversary: abuser fraction must leave at least one good peer");

  check_fraction(free_rider_fraction, "free-rider fraction");

  if (outage_class < -1 || outage_class >= net::kNumBandwidthClasses)
    throw std::invalid_argument(
        "adversary: outage class must be -1 (off) or a bandwidth class in "
        "[0, " +
        std::to_string(net::kNumBandwidthClasses) + "), got " +
        std::to_string(outage_class));
  if (outage_at_s >= 0.0 && !std::isfinite(outage_at_s))
    throw std::invalid_argument("adversary: outage time must be finite");
  check_fraction(outage_fraction, "outage fraction");

  check_rate(storm_rate_per_s, "storm rate");
  check_window(storm_start_s, storm_end_s, "storm");
  if (storm_enabled()) {
    if (!(storm_pareto_shape > 1.0) || !std::isfinite(storm_pareto_shape))
      throw std::invalid_argument(
          "adversary: storm Pareto shape must be finite and > 1 (finite "
          "mean), got " +
          std::to_string(storm_pareto_shape));
    if (!(storm_offline_mean_s > 0.0) || !std::isfinite(storm_offline_mean_s))
      throw std::invalid_argument(
          "adversary: storm mean offline time must be finite and > 0, got " +
          std::to_string(storm_offline_mean_s));
  }

  for (double w : benefit_weight)
    if (!(w >= 0.0) || !std::isfinite(w))
      throw std::invalid_argument(
          "adversary: benefit weights must be finite and >= 0, got " +
          std::to_string(w));
}

des::Rng make_adversary_lane(std::uint64_t seed) {
  return des::Rng(des::hash_seed(seed, kAdversaryStream));
}

}  // namespace dsf::sim
