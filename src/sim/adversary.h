#pragma once

// Deterministic adversarial & heterogeneous behavior layer for the overlay
// engine (ROADMAP item 5).
//
// An AdversaryPlan describes four structured adversities layered on top of
// the memoryless fault layer (src/sim/fault.h):
//
//   * query-flood abusers — a designated fraction of peers spray TTL-max
//     searches at a configurable rate inside a window (the OPNET flooding
//     regime where flood-family schemes collapse);
//   * free-riders — peers that answer nothing (empty libraries) but issue
//     their full query load, the classic Gnutella pathology;
//   * correlated regional outage — the whole of one delay/bandwidth class
//     (56K / cable / LAN) crashes at a configured instant, leaving
//     dangling neighbor entries exactly like CrashModel victims;
//   * churn storms — an extra Poisson process of forced log-offs whose
//     comeback times have Pareto tails (heavy-tailed offline sessions).
//
// Plus heterogeneous peer *capacity*: per-class degree bounds (a 56K modem
// cannot usefully maintain as many neighbors as a LAN peer) and per-class
// benefit weighting (answers from well-provisioned peers may be valued
// differently by the dynamic reconfiguration policy).
//
// Determinism contract: identical to FaultPlan's.  Every adversary decision
// draws from a dedicated RNG lane derived via des::hash_seed from the
// scenario seed — never from the master stream or any lane split off it —
// and a disabled plan performs *zero* draws and schedules *zero* events, so
// a baseline run with the layer merely attached replays byte-identically;
// tests/sim/adversary_golden_test.cpp pins this for all four simulators.

#include <array>
#include <cstdint>
#include <limits>

#include "des/rng.h"
#include "net/bandwidth.h"

namespace dsf::sim {

/// Everything the adversary layer can be asked to do.  All knobs default to
/// "off"; validate() rejects inconsistent settings before any state is
/// touched.
struct AdversaryPlan {
  // --- query-flood abusers ----------------------------------------------
  /// Fraction of peers designated as abusers (rounded to the nearest whole
  /// peer, at least one when the fraction is positive).
  double abuser_fraction = 0.0;
  /// Per-abuser spray rate (TTL-max searches per second).  The layer runs
  /// one aggregate Poisson process at `abusers * rate` and picks a uniform
  /// abuser per event, which is statistically identical to independent
  /// per-abuser processes.
  double abuse_rate_per_s = 0.0;
  /// Abuse window [start, end); infinite end means "until the horizon".
  double abuse_start_s = 0.0;
  double abuse_end_s = std::numeric_limits<double>::infinity();

  // --- free-riders -------------------------------------------------------
  /// Fraction of non-abuser peers that serve no content (drawn i.i.d.
  /// Bernoulli per peer at arm time, on the adversary lane).
  double free_rider_fraction = 0.0;

  // --- correlated regional outage ----------------------------------------
  /// Which BandwidthClass to kill (0 = 56K, 1 = cable, 2 = LAN); -1 = off.
  int outage_class = -1;
  /// When the outage strikes (seconds); negative = off.
  double outage_at_s = -1.0;
  /// Fraction of the class that crashes (1.0 = the entire class; a partial
  /// outage draws one Bernoulli per class member).
  double outage_fraction = 1.0;

  // --- churn storm -------------------------------------------------------
  /// Rate of forced log-off kicks (events per second across the whole
  /// population) inside [storm_start_s, storm_end_s); 0 = off.
  double storm_rate_per_s = 0.0;
  double storm_start_s = 0.0;
  double storm_end_s = std::numeric_limits<double>::infinity();
  /// Pareto shape of the forced offline time (must exceed 1 so the mean is
  /// finite); 1.5 gives the classic heavy session tail.
  double storm_pareto_shape = 1.5;
  /// Mean forced offline time in seconds (Pareto scale is derived so the
  /// mean matches).
  double storm_offline_mean_s = 600.0;

  // --- heterogeneous capacity -------------------------------------------
  /// Per-class neighbor-degree bound (index = BandwidthClass).  0 = unset:
  /// the scenario's own configured degree applies.  A positive bound caps
  /// how many neighbors that class fills toward / retains at update time.
  std::array<std::uint32_t, net::kNumBandwidthClasses> degree_bound{};
  /// Per-class multiplier on the benefit credited for an answer delivered
  /// by a peer of that class.  1.0 = neutral (the default for all).
  std::array<double, net::kNumBandwidthClasses> benefit_weight{1.0, 1.0, 1.0};

  bool abusers_enabled() const noexcept {
    return abuser_fraction > 0.0 && abuse_rate_per_s > 0.0;
  }
  bool free_riders_enabled() const noexcept { return free_rider_fraction > 0.0; }
  bool outage_enabled() const noexcept {
    return outage_class >= 0 && outage_at_s >= 0.0 && outage_fraction > 0.0;
  }
  bool storm_enabled() const noexcept { return storm_rate_per_s > 0.0; }
  bool capacity_enabled() const noexcept {
    for (auto b : degree_bound)
      if (b != 0) return true;
    for (auto w : benefit_weight)
      if (w != 1.0) return true;
    return false;
  }

  /// True if any adversity or capacity knob is set.  The engine checks this
  /// before arming so a default plan costs one branch and zero draws.
  bool enabled() const noexcept {
    return abusers_enabled() || free_riders_enabled() || outage_enabled() ||
           storm_enabled() || capacity_enabled();
  }

  /// Throws std::invalid_argument when any knob is out of range (fractions
  /// outside [0, 1], inverted windows, non-finite rates, Pareto shape <= 1,
  /// negative weights, outage class out of range, ...).
  void validate() const;
};

/// What the adversary layer did during one run.
struct AdversaryStats {
  std::uint64_t abusers = 0;        ///< peers designated as abusers
  std::uint64_t free_riders = 0;    ///< peers designated as free-riders
  std::uint64_t abuse_queries = 0;  ///< sprayed TTL-max searches served
  std::uint64_t abuse_hits = 0;     ///< sprayed searches that found a result
  std::uint64_t outage_victims = 0; ///< peers crashed by the regional outage
  std::uint64_t storm_kicks = 0;    ///< forced log-offs delivered
};

/// Builds the adversary RNG lane for a scenario seed.  Derived with
/// des::hash_seed under a fixed salt so it is independent of the master
/// stream, every lane split off it, and the fault and load lanes.
des::Rng make_adversary_lane(std::uint64_t seed);

}  // namespace dsf::sim
