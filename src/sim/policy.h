#pragma once

// The policy-object surface of the overlay engine: the per-scenario choices
// the paper treats as orthogonal plug-ins — how queries propagate (§2), how
// a result's worth is measured (§3.4), and how nodes come and go (§4.2) —
// expressed as small objects/enums a scenario hands to (or consults next
// to) sim::OverlayEngine.  A new scenario picks from these instead of
// re-implementing dispatch switches.

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/benefit.h"
#include "core/flood_search.h"
#include "core/search_strategies.h"
#include "core/stats_store.h"
#include "core/unreachable.h"
#include "core/visit_stamp.h"
#include "des/rng.h"
#include "net/node_id.h"

namespace dsf::sim {

/// Query-propagation technique (§2: the Yang & Garcia-Molina methods are
/// orthogonal to reconfiguration and compose with any overlay).
enum class SearchStrategyKind : std::uint8_t {
  kFlood,               ///< plain BFS flood (the case study's default)
  kIterativeDeepening,  ///< growing-depth cycles until satisfied
  kDirectedBft,         ///< initiator forwards to a beneficial subset only
  kLocalIndices,        ///< nodes answer for peers within radius 1
};

/// Dispatches one search through the configured strategy over the caller's
/// overlay/content/delay bindings.  `stats` and `directed_fanout` feed the
/// directed-BFT subset selection; `hit_stamps` the local-indices holder
/// dedup; both are ignored by the other strategies.  Iterative deepening is
/// folded into a plain SearchOutcome (accumulated message cost, final
/// cycle's hits) so every metrics path sees one result type.  `transmit` is
/// the transport policy every transmission consults — the engine's fault
/// layer, or core::ReliableTransmit for the historical fault-free paths.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn>
core::SearchOutcome dispatch_search(
    SearchStrategyKind kind, net::NodeId initiator,
    const core::SearchParams& params, const core::StatsStore& stats,
    std::uint32_t directed_fanout, NeighborsFn&& neighbors,
    HasContentFn&& has_content, DelayFn&& delay, TransmitFn&& transmit,
    core::VisitStamp& stamps, core::VisitStamp& hit_stamps,
    core::SearchScratch& scratch) {
  switch (kind) {
    case SearchStrategyKind::kFlood:
      return core::flood_search(initiator, params, neighbors, has_content,
                                delay, transmit, stamps, scratch);
    case SearchStrategyKind::kIterativeDeepening: {
      auto it = core::iterative_deepening_search(
          initiator, params, core::default_depth_ladder(params.max_hops),
          neighbors, has_content, delay, transmit, stamps, scratch);
      core::SearchOutcome out = std::move(it.last);
      out.query_messages = it.total_messages;
      return out;
    }
    case SearchStrategyKind::kDirectedBft: {
      const auto subset = core::select_directed_subset(
          stats, neighbors(initiator), directed_fanout);
      return core::directed_flood_search(initiator, params, subset, neighbors,
                                         has_content, delay, transmit, stamps,
                                         scratch);
    }
    case SearchStrategyKind::kLocalIndices:
      return core::indexed_flood_search(initiator, params, neighbors,
                                        has_content, delay, transmit, stamps,
                                        hit_stamps, scratch);
  }
  core::unreachable_enum("sim::SearchStrategyKind");
}

template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
core::SearchOutcome dispatch_search(
    SearchStrategyKind kind, net::NodeId initiator,
    const core::SearchParams& params, const core::StatsStore& stats,
    std::uint32_t directed_fanout, NeighborsFn&& neighbors,
    HasContentFn&& has_content, DelayFn&& delay, core::VisitStamp& stamps,
    core::VisitStamp& hit_stamps, core::SearchScratch& scratch) {
  core::ReliableTransmit reliable;
  return dispatch_search(kind, initiator, params, stats, directed_fanout,
                         std::forward<NeighborsFn>(neighbors),
                         std::forward<HasContentFn>(has_content),
                         std::forward<DelayFn>(delay), reliable, stamps,
                         hit_stamps, scratch);
}

/// The benefit functions of §3.4, one per scenario family plus the ablation
/// baselines, behind a single factory (the exhaustive-switch pattern every
/// policy switch in the tree follows: all cases return, no fallback).
enum class BenefitPolicy : std::uint8_t {
  kBandwidthOverResults,  ///< §4.1 music sharing: B / R
  kItemsOverLatency,      ///< web caching: pages per second
  kProcessingTimeSaved,   ///< OLAP: warehouse time avoided
  kUnit,                  ///< ablation: pure result counting
  kInverseLatency,        ///< ablation: reply latency only
};

std::unique_ptr<core::BenefitFunction> make_benefit(BenefitPolicy policy);

/// Churn policy: decides each node's initial on-line state and session
/// durations.  The engine's `draw_initial_online` consumes one lane draw
/// per node; scenarios with sessions schedule log-ins/log-offs from the
/// duration draws.
class ChurnModel {
 public:
  virtual ~ChurnModel() = default;
  virtual bool initially_online(des::Rng& rng) const = 0;
  virtual double online_duration_s(des::Rng& rng) const = 0;
  virtual double offline_duration_s(des::Rng& rng) const = 0;
};

/// Server populations (digital libraries, OLAP peers, proxies): every node
/// is up for the whole horizon.
class NoChurn final : public ChurnModel {
 public:
  bool initially_online(des::Rng&) const override { return true; }
  double online_duration_s(des::Rng&) const override {
    return std::numeric_limits<double>::infinity();
  }
  double offline_duration_s(des::Rng&) const override { return 0.0; }
};

}  // namespace dsf::sim
