#pragma once

// The policy-object surface of the overlay engine: the per-scenario choices
// the paper treats as orthogonal plug-ins — how queries propagate (§2), how
// a result's worth is measured (§3.4), and how nodes come and go (§4.2) —
// expressed as small objects/enums a scenario hands to (or consults next
// to) sim::OverlayEngine.  A new scenario picks from these instead of
// re-implementing dispatch switches.

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/benefit.h"
#include "core/flood_search.h"
#include "core/lsh.h"
#include "core/query_plane.h"
#include "core/ranked_search.h"
#include "core/search_strategies.h"
#include "core/stats_store.h"
#include "core/unreachable.h"
#include "core/visit_stamp.h"
#include "des/rng.h"
#include "net/node_id.h"

namespace dsf::sim {

/// Query-propagation technique (§2: the Yang & Garcia-Molina methods are
/// orthogonal to reconfiguration and compose with any overlay; the ranked
/// and similarity schemes extend the same plug-in point with queries that
/// carry scores).
enum class SearchStrategyKind : std::uint8_t {
  kFlood,               ///< plain BFS flood (the case study's default)
  kIterativeDeepening,  ///< growing-depth cycles until satisfied
  kDirectedBft,         ///< initiator forwards to a beneficial subset only
  kLocalIndices,        ///< nodes answer for peers within radius 1
  kTopK,                ///< FD top-k: scored replies, threshold propagation
  kLsh,                 ///< MinHash similarity with banded bucket routing
};

constexpr const char* to_string(SearchStrategyKind k) noexcept {
  switch (k) {
    case SearchStrategyKind::kFlood: return "flood";
    case SearchStrategyKind::kIterativeDeepening: return "iterative";
    case SearchStrategyKind::kDirectedBft: return "directed";
    case SearchStrategyKind::kLocalIndices: return "local-indices";
    case SearchStrategyKind::kTopK: return "top-k";
    case SearchStrategyKind::kLsh: return "lsh";
  }
  return "?";
}

/// Parses a --search-scheme value; throws std::invalid_argument naming the
/// flag for an unknown spelling (drivers map it to the usage exit).
inline SearchStrategyKind parse_search_strategy(const std::string& s) {
  if (s == "flood") return SearchStrategyKind::kFlood;
  if (s == "iterative") return SearchStrategyKind::kIterativeDeepening;
  if (s == "directed") return SearchStrategyKind::kDirectedBft;
  if (s == "local-indices") return SearchStrategyKind::kLocalIndices;
  if (s == "top-k") return SearchStrategyKind::kTopK;
  if (s == "lsh") return SearchStrategyKind::kLsh;
  throw std::invalid_argument("--search-scheme: unknown value: " + s);
}

/// The query class a strategy serves: the flood family answers exact-match
/// queries; the ranked and similarity schemes each own their class.
constexpr core::QueryClass query_class_of(SearchStrategyKind k) noexcept {
  switch (k) {
    case SearchStrategyKind::kFlood:
    case SearchStrategyKind::kIterativeDeepening:
    case SearchStrategyKind::kDirectedBft:
    case SearchStrategyKind::kLocalIndices:
      return core::QueryClass::kExactMatch;
    case SearchStrategyKind::kTopK:
      return core::QueryClass::kTopKRanked;
    case SearchStrategyKind::kLsh:
      return core::QueryClass::kSimilarity;
  }
  return core::QueryClass::kExactMatch;
}

/// Builds the QuerySpec a strategy needs from the scenario's knobs.
inline core::QuerySpec query_spec_for(SearchStrategyKind kind,
                                      const core::SearchParams& params,
                                      std::uint32_t k, double sim_threshold) {
  switch (query_class_of(kind)) {
    case core::QueryClass::kExactMatch:
      return core::QuerySpec::exact(params);
    case core::QueryClass::kTopKRanked:
      return core::QuerySpec::top_k(params, k);
    case core::QueryClass::kSimilarity:
      return core::QuerySpec::similar(params, sim_threshold);
  }
  core::unreachable_enum("core::QueryClass");
}

/// Dispatches one query through the configured strategy over the bound
/// SearchContext.  The flood family reads the exact-match bindings
/// (neighbors/has_content/delay/transmit/stamps/scratch, plus ctx.stats
/// and spec-independent directed_fanout for directed BFT and hit_stamps
/// for local indices); kTopK additionally reads ctx.rank, and kLsh reads
/// ctx.rank (the similarity estimate) and ctx.candidate (the band-bucket
/// gate).  Iterative deepening is folded into a plain SearchOutcome
/// (accumulated message cost, final cycle's hits) so every metrics path
/// sees one result type.
template <typename Ctx>
core::SearchOutcome dispatch_search(SearchStrategyKind kind,
                                    const core::QuerySpec& spec,
                                    std::uint32_t directed_fanout, Ctx& ctx) {
  switch (kind) {
    case SearchStrategyKind::kFlood:
      return core::flood_search(ctx.initiator, spec.params, ctx.neighbors,
                                ctx.has_content, ctx.delay, ctx.transmit,
                                *ctx.stamps, *ctx.scratch);
    case SearchStrategyKind::kIterativeDeepening: {
      auto it = core::iterative_deepening_search(
          ctx.initiator, spec.params,
          core::default_depth_ladder(spec.params.max_hops), ctx.neighbors,
          ctx.has_content, ctx.delay, ctx.transmit, *ctx.stamps,
          *ctx.scratch);
      core::SearchOutcome out = std::move(it.last);
      out.query_messages = it.total_messages;
      return out;
    }
    case SearchStrategyKind::kDirectedBft: {
      const auto subset = core::select_directed_subset(
          *ctx.stats, ctx.neighbors(ctx.initiator), directed_fanout);
      return core::directed_flood_search(ctx.initiator, spec.params, subset,
                                         ctx.neighbors, ctx.has_content,
                                         ctx.delay, ctx.transmit, *ctx.stamps,
                                         *ctx.scratch);
    }
    case SearchStrategyKind::kLocalIndices:
      return core::indexed_flood_search(ctx.initiator, spec.params,
                                        ctx.neighbors, ctx.has_content,
                                        ctx.delay, ctx.transmit, *ctx.stamps,
                                        *ctx.hit_stamps, *ctx.scratch);
    case SearchStrategyKind::kTopK:
      return core::ranked_topk_search(ctx.initiator, spec.params, spec.k,
                                      ctx.neighbors, ctx.rank, ctx.delay,
                                      ctx.transmit, *ctx.stamps, *ctx.scratch);
    case SearchStrategyKind::kLsh:
      return core::lsh_similarity_search(
          ctx.initiator, spec.params, spec.sim_threshold, ctx.neighbors,
          ctx.rank, ctx.candidate, ctx.delay, ctx.transmit, *ctx.stamps,
          *ctx.scratch);
  }
  core::unreachable_enum("sim::SearchStrategyKind");
}

/// DEPRECATED positional form (one-release shim): the 10-argument spread
/// this PR's SearchContext replaced.  Kept so out-of-tree call sites get
/// one release to migrate; forwards to the typed dispatch above and will
/// be removed next release.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn>
core::SearchOutcome dispatch_search(
    SearchStrategyKind kind, net::NodeId initiator,
    const core::SearchParams& params, const core::StatsStore& stats,
    std::uint32_t directed_fanout, NeighborsFn&& neighbors,
    HasContentFn&& has_content, DelayFn&& delay, TransmitFn&& transmit,
    core::VisitStamp& stamps, core::VisitStamp& hit_stamps,
    core::SearchScratch& scratch) {
  auto ctx = core::make_search_context(
      initiator, std::forward<NeighborsFn>(neighbors),
      std::forward<HasContentFn>(has_content), std::forward<DelayFn>(delay),
      std::forward<TransmitFn>(transmit), stamps, hit_stamps, scratch);
  ctx.stats = &stats;
  return dispatch_search(kind, core::QuerySpec::exact(params), directed_fanout,
                         ctx);
}

/// DEPRECATED positional form, reliable-transmit default (one-release
/// shim): subsumed by make_search_context, which owns the transport
/// default now.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
core::SearchOutcome dispatch_search(
    SearchStrategyKind kind, net::NodeId initiator,
    const core::SearchParams& params, const core::StatsStore& stats,
    std::uint32_t directed_fanout, NeighborsFn&& neighbors,
    HasContentFn&& has_content, DelayFn&& delay, core::VisitStamp& stamps,
    core::VisitStamp& hit_stamps, core::SearchScratch& scratch) {
  core::ReliableTransmit reliable;
  return dispatch_search(kind, initiator, params, stats, directed_fanout,
                         std::forward<NeighborsFn>(neighbors),
                         std::forward<HasContentFn>(has_content),
                         std::forward<DelayFn>(delay), reliable, stamps,
                         hit_stamps, scratch);
}

/// The benefit functions of §3.4, one per scenario family plus the ablation
/// baselines, behind a single factory (the exhaustive-switch pattern every
/// policy switch in the tree follows: all cases return, no fallback).
enum class BenefitPolicy : std::uint8_t {
  kBandwidthOverResults,  ///< §4.1 music sharing: B / R
  kItemsOverLatency,      ///< web caching: pages per second
  kProcessingTimeSaved,   ///< OLAP: warehouse time avoided
  kUnit,                  ///< ablation: pure result counting
  kInverseLatency,        ///< ablation: reply latency only
};

std::unique_ptr<core::BenefitFunction> make_benefit(BenefitPolicy policy);

/// Churn policy: decides each node's initial on-line state and session
/// durations.  The engine's `draw_initial_online` consumes one lane draw
/// per node; scenarios with sessions schedule log-ins/log-offs from the
/// duration draws.
class ChurnModel {
 public:
  virtual ~ChurnModel() = default;
  virtual bool initially_online(des::Rng& rng) const = 0;
  virtual double online_duration_s(des::Rng& rng) const = 0;
  virtual double offline_duration_s(des::Rng& rng) const = 0;
};

/// Server populations (digital libraries, OLAP peers, proxies): every node
/// is up for the whole horizon.
class NoChurn final : public ChurnModel {
 public:
  bool initially_online(des::Rng&) const override { return true; }
  double online_duration_s(des::Rng&) const override {
    return std::numeric_limits<double>::infinity();
  }
  double offline_duration_s(des::Rng&) const override { return 0.0; }
};

}  // namespace dsf::sim
