#include "sim/fault.h"

#include <stdexcept>
#include <string>

namespace dsf::sim {

namespace {

/// Salt for the fault-decision lane (see make_fault_lane).  Changing it
/// changes every faulty trajectory, so it is as load-bearing as a seed.
constexpr std::uint64_t kFaultLaneSalt = 0xfa171a7e'0000'0002ULL;

void validate_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("FaultRule: ") + what +
                                " must be in [0, 1]");
}

}  // namespace

void FaultPlan::set_rule(net::MessageType t, const FaultRule& rule) {
  validate_probability(rule.drop_prob, "drop_prob");
  validate_probability(rule.duplicate_prob, "duplicate_prob");
  validate_probability(rule.delay_prob, "delay_prob");
  if (rule.drop_prob + rule.duplicate_prob + rule.delay_prob > 1.0)
    throw std::invalid_argument(
        "FaultRule: drop_prob + duplicate_prob + delay_prob must not "
        "exceed 1 (one uniform draw decides the outcome)");
  if (!(rule.extra_delay_s >= 0.0))
    throw std::invalid_argument("FaultRule: extra_delay_s must be >= 0");
  if (!(rule.window_start_s >= 0.0) ||
      !(rule.window_end_s > rule.window_start_s))
    throw std::invalid_argument(
        "FaultRule: window must satisfy 0 <= start < end");

  const auto bit = 1u << static_cast<unsigned>(t);
  rules_[static_cast<std::size_t>(t)] = rule;
  if (rule.trivial())
    active_mask_ &= ~bit;
  else
    active_mask_ |= bit;
}

void FaultPlan::set_rule_all(const FaultRule& rule) {
  for (int i = 0; i < net::kNumMessageTypes; ++i)
    set_rule(static_cast<net::MessageType>(i), rule);
}

FaultDecision FaultPlan::decide(net::MessageType t, double now_s,
                                des::Rng& lane) const {
  FaultDecision d;
  if (!targets(t)) return d;
  const FaultRule& r = rules_[static_cast<std::size_t>(t)];
  if (now_s < r.window_start_s || now_s >= r.window_end_s) return d;
  // One draw partitions [0, 1) into drop | duplicate | delay | clean, so a
  // targeted transmission costs exactly one lane draw regardless of which
  // branch fires.
  const double u = lane.uniform();
  if (u < r.drop_prob) {
    d.drop = true;
  } else if (u < r.drop_prob + r.duplicate_prob) {
    d.duplicate = true;
  } else if (u < r.drop_prob + r.duplicate_prob + r.delay_prob) {
    d.extra_delay_s = r.extra_delay_s;
  }
  return d;
}

des::Rng make_fault_lane(std::uint64_t seed) {
  return des::Rng(des::hash_seed(seed, kFaultLaneSalt));
}

}  // namespace dsf::sim
