#pragma once

#include <cstdint>
#include <vector>

#include "core/benefit.h"
#include "core/flood_search.h"
#include "core/relations.h"
#include "core/stats_store.h"
#include "des/distributions.h"
#include "des/rng.h"
#include "des/simulator.h"
#include "metrics/time_series.h"
#include "net/message.h"
#include "sim/engine.h"
#include "sim/policy.h"

namespace dsf::diglib {

using DocId = std::uint32_t;

/// How the federation's neighbor lists are organized (§3.1).
enum class ListMode : std::uint8_t {
  kAllToAll,   ///< O_i and I_i contain every repository — exact recall, but
               ///< per-query cost grows linearly with the federation and
               ///< is "applicable only for small N"
  kStatic,     ///< random bounded outgoing lists, never updated
  kAdaptive,   ///< bounded lists + Algo-3 updates from search statistics
};

/// Distributed digital libraries (named in the paper's abstract): a
/// federation of always-on document servers.  Unlike the music-sharing
/// case there is no churn, search is *extensive* — the paper's
/// "retrieving numerous nodes containing the result" mode, so holders
/// keep forwarding — and the quality metric is recall: how many of the
/// copies that exist in the federation a query retrieves within the hop
/// budget.
struct DigLibConfig {
  std::uint32_t num_repositories = 64;
  std::uint32_t num_docs = 32'000;
  /// Many narrow topics: a random bounded list rarely contains a
  /// same-topic repository, which is precisely the regime where adaptive
  /// lists pay (with few broad topics, random reach already covers every
  /// topic and no topology can improve on it).
  std::uint32_t num_topics = 16;
  double topic_share = 0.7;       ///< queries/holdings inside own topic
  double zipf_theta = 0.8;        ///< document popularity within a topic
  std::uint32_t holdings = 800;   ///< documents per repository
  std::uint32_t num_neighbors = 3;  ///< bounded-list capacity
  int max_hops = 2;
  double mean_interquery_s = 5.0;  ///< per repository (client arrivals)
  /// Client-visible deadline for a query that retrieves no copy — the
  /// latency an open-loop injected miss occupies its server for (closed
  /// loop has no deadline: unsatisfied queries simply score no delay).
  double query_timeout_s = 4.0;
  ListMode mode = ListMode::kAdaptive;
  double update_period_s = 600.0;  ///< Algo-3 trigger for kAdaptive
  /// Query-propagation scheme.  The federation supports the flood family
  /// and kTopK (ranked retrieval over document scores); kLsh is rejected
  /// at construction — repositories advertise no signatures.
  sim::SearchStrategyKind search_strategy = sim::SearchStrategyKind::kFlood;
  std::uint32_t top_k = 1;  ///< kTopK: copies the client wants ranked
  double sim_hours = 2.0;
  double warmup_hours = 0.25;
  std::uint64_t seed = 17;
};

struct DigLibResult {
  std::uint64_t queries = 0;         ///< post-warmup
  std::uint64_t satisfied = 0;       ///< queries with >= 1 result
  std::uint64_t copies_found = 0;    ///< results returned across queries
  std::uint64_t copies_available = 0;  ///< copies existing for those queries
  metrics::Summary first_result_delay_s;
  metrics::Summary messages_per_query;
  net::MessageStats traffic;

  /// Fraction of existing copies retrieved.  Popular documents are
  /// replicated across the whole federation, so full recall is bounded by
  /// the *distinct reach* of a query — it separates all-to-all from
  /// bounded lists but cannot reward topology bias.
  double recall() const {
    return copies_available
               ? static_cast<double>(copies_found) /
                     static_cast<double>(copies_available)
               : 0.0;
  }

  /// Fraction of queries that found at least one copy — the metric
  /// adaptation improves (it targets the repositories likely to hold the
  /// requester's topic, which matters for tail documents).
  double hit_rate() const {
    return queries ? static_cast<double>(satisfied) /
                         static_cast<double>(queries)
                   : 0.0;
  }
};

class DigLibSim : public sim::OverlayEngine {
 public:
  explicit DigLibSim(const DigLibConfig& config);

  DigLibResult run();

  const DigLibConfig& config() const noexcept { return config_; }

  /// Copies of `doc` across the federation (exposed for tests).
  std::uint32_t copies_of(DocId doc) const { return copy_count_.at(doc); }

 protected:
  /// Open-loop injection: serves one external document query at
  /// repository `r` through the same extensive flood search as closed-loop
  /// queries (ledger-accounted, span-visible, adaptive statistics fed)
  /// without touching the closed-loop DigLibResult counters.  `item` is a
  /// DocId, or load::kAnyItem to draw from `r`'s topic mix on the load
  /// lane.  A query that retrieves no copy serves for query_timeout_s.
  load::Served serve_injected_query(net::NodeId r,
                                    std::uint64_t item) override;

  /// Snapshot hooks: per-repository benefit statistics and exploration
  /// links plus the result accumulators.  Holdings and copy counts are
  /// immutable and come from the constructor.
  void save_domain(snap::Writer::Out& out) const override;
  void load_domain(snap::Reader::In& in) override;
  void restore_keyed_event(double t, std::uint32_t kind, std::uint64_t a,
                           std::uint64_t b) override;

 private:
  /// Keyed event kinds (snapshot pending-event records).
  static constexpr std::uint32_t kLibQuery = kKeyedUserBase + 0;  ///< a = r

  struct Repository {
    std::vector<DocId> holdings;  ///< sorted for binary search
    core::StatsStore stats;
    std::uint32_t topic = 0;
    /// The rotating exploration link (Algo 2): without churn, purely
    /// benefit-driven lists collapse same-topic repositories into cliques
    /// and nothing new is ever discovered; one slot stays random and is
    /// re-drawn at every update.
    net::NodeId exploration_link = net::kInvalidNode;
  };

  /// Validates the config and builds the engine parameterization.
  static sim::EngineConfig make_engine_config(const DigLibConfig& config);

  void issue_query(net::NodeId r);
  /// The search path shared by closed-loop queries and open-loop
  /// injection: extensive flood from `from`, span recording, message
  /// accounting and (kAdaptive) benefit-statistics feeding.
  core::SearchOutcome search_doc(net::NodeId from, DocId doc);
  void update_neighbors(net::NodeId r);
  DocId draw_doc(std::uint32_t home_topic) {
    return draw_doc(home_topic, rng());
  }
  DocId draw_doc(std::uint32_t home_topic, des::Rng& r);
  bool holds(net::NodeId r, DocId doc) const;

  /// Shard-local accumulator during parallel windows, `result_` otherwise.
  DigLibResult& res() noexcept {
    const std::uint32_t s = des::ShardedSimulator::current_shard();
    return (!shard_results_.empty() && s != des::kNoShard)
               ? shard_results_[s]
               : result_;
  }

  DigLibConfig config_;
  std::vector<Repository> repos_;
  /// Holder-dedup stamps for the local-indices strategy (serial runs
  /// only — run() rejects the strategy under shards).
  core::VisitStamp hit_stamps_;
  std::vector<std::uint32_t> copy_count_;  ///< per-document replica count
  des::Zipf doc_zipf_;
  des::Exponential interquery_;
  core::ItemsOverLatency benefit_;
  DigLibResult result_;
  std::vector<DigLibResult> shard_results_;  ///< parallel runs only
};

/// Folds shard-local metrics into `into` (canonical shard-order merge).
void merge_results(DigLibResult& into, const DigLibResult& shard);

}  // namespace dsf::diglib
