#include "diglib/diglib_sim.h"

#include <algorithm>
#include <unordered_set>

#include "core/update.h"
#include "sim/invariants.h"
#include "snap/codec.h"

namespace dsf::diglib {

sim::EngineConfig DigLibSim::make_engine_config(const DigLibConfig& config) {
  sim::require_positive("diglib", "num_repositories", config.num_repositories);
  sim::require_positive("diglib", "num_neighbors", config.num_neighbors);
  sim::require_divides("diglib", "num_docs", config.num_docs, "num_topics",
                       config.num_topics);
  sim::require_positive("diglib", "query_timeout_s", config.query_timeout_s);
  sim::validate_or_throw(
      config.search_strategy != sim::SearchStrategyKind::kLsh, "diglib",
      "search_strategy lsh is not supported (repositories advertise no "
      "similarity signatures)");
  if (config.search_strategy == sim::SearchStrategyKind::kTopK)
    sim::require_positive("diglib", "top_k", config.top_k);
  sim::EngineConfig ec;
  ec.name = "diglib";
  ec.num_nodes = config.num_repositories;
  ec.seed = config.seed;
  ec.rng_layout = sim::RngLayout::kCompact;
  ec.relation = config.mode == ListMode::kAllToAll
                    ? core::RelationKind::kAllToAll
                    : core::RelationKind::kAsymmetric;
  ec.out_capacity = config.num_neighbors;
  ec.in_capacity = config.num_repositories;
  ec.sim_hours = config.sim_hours;
  ec.warmup_hours = config.warmup_hours;
  return ec;
}

DigLibSim::DigLibSim(const DigLibConfig& config)
    : sim::OverlayEngine(make_engine_config(config)),
      config_(config),
      hit_stamps_(config.num_repositories),
      copy_count_(config.num_docs, 0),
      doc_zipf_(config.num_docs / config.num_topics, config.zipf_theta),
      interquery_(config.mean_interquery_s) {
  // Build holdings: topic_share of a repository's documents come from its
  // home topic, the rest uniformly from other topics; selection within a
  // topic follows the popularity profile, so popular documents are widely
  // replicated (recall < 1 is then a real retrieval deficit, not a
  // scarcity artifact).
  repos_.resize(config.num_repositories);
  for (net::NodeId r = 0; r < config.num_repositories; ++r) {
    Repository& repo = repos_[r];
    repo.topic = r % config.num_topics;
    std::unordered_set<DocId> seen;
    seen.reserve(config.holdings * 2);
    int attempts = static_cast<int>(config.holdings) * 50;
    while (seen.size() < config.holdings && attempts-- > 0)
      seen.insert(draw_doc(repo.topic));
    repo.holdings.assign(seen.begin(), seen.end());
    std::sort(repo.holdings.begin(), repo.holdings.end());
    for (DocId d : repo.holdings) ++copy_count_[d];
  }

  // Initial lists.
  if (config.mode == ListMode::kAllToAll) {
    for (net::NodeId a = 0; a < config.num_repositories; ++a)
      for (net::NodeId b = 0; b < config.num_repositories; ++b)
        if (a != b) overlay_.link(a, b);
  } else {
    for (net::NodeId r = 0; r < config.num_repositories; ++r) {
      fill_random_neighbors(
          r, config.num_neighbors, default_bootstrap_attempts(),
          [this] {
            return static_cast<net::NodeId>(
                rng().uniform_int(config_.num_repositories));
          },
          [] {});
    }
  }
}

DocId DigLibSim::draw_doc(std::uint32_t home_topic, des::Rng& r) {
  const std::uint32_t docs_per_topic = config_.num_docs / config_.num_topics;
  std::uint32_t topic = home_topic;
  if (!r.bernoulli(config_.topic_share))
    topic = static_cast<std::uint32_t>(r.uniform_int(config_.num_topics));
  const auto rank = static_cast<std::uint32_t>(doc_zipf_.sample(r));
  return topic * docs_per_topic + rank;
}

bool DigLibSim::holds(net::NodeId r, DocId doc) const {
  const auto& h = repos_[r].holdings;
  return std::binary_search(h.begin(), h.end(), doc);
}

core::SearchOutcome DigLibSim::search_doc(net::NodeId from, DocId doc) {
  // Extensive search (§3.2): the goal is many copies, so holders keep
  // forwarding; all-to-all needs a single hop by construction.
  core::SearchParams params;
  params.max_hops = config_.mode == ListMode::kAllToAll ? 1 : config_.max_hops;
  params.forward_when_hit = true;

  const auto neighbors = [this](net::NodeId n) -> core::NeighborView {
    return overlay_.out_neighbors(n);
  };
  const auto has_content = [this, doc](net::NodeId n) {
    // Free-riders (adversary layer) answer nothing; always false when off.
    return !is_free_rider(n) && holds(n, doc);
  };
  const auto delay = [this](net::NodeId a, net::NodeId b) {
    return sample_delay_s(a, b);
  };
  // kTopK ranks holders by a deterministic per-(repository, document)
  // relevance in (0, 1] — the retrieval score a ranked federation would
  // compute locally.  Non-holders and free-riders score 0.
  const auto rank = [this, doc](net::NodeId n) {
    if (is_free_rider(n) || !holds(n, doc)) return 0.0;
    const std::uint64_t bits =
        des::hash_seed(des::hash_seed(config_.seed, 0x2b5eced5u) ^ n, doc);
    return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
  };
  const std::uint32_t span = obs_search_begin(from, params.max_hops, doc);
  auto ctx = core::make_ranked_context(from, neighbors, has_content, rank,
                                       core::NoCandidate{}, delay,
                                       search_transmit(), visit_stamps(),
                                       hit_stamps_, search_scratch());
  ctx.stats = &repos_[from].stats;
  const core::QuerySpec spec = sim::query_spec_for(
      config_.search_strategy, params, config_.top_k, /*sim_threshold=*/0.0);
  const auto outcome =
      sim::dispatch_search(config_.search_strategy, spec,
                           /*directed_fanout=*/config_.num_neighbors, ctx);
  if (span != 0) {
    const core::SearchHit* first = outcome.first_hit();
    obs_search_end(span, from, outcome.hits.size(), first ? first->hop : -1,
                   first ? first->reply_at_s : -1.0, outcome.best_score());
  }
  if (sim::InvariantChecker* c = checker()) c->check_search_outcome(spec, outcome);

  count(net::MessageType::kQuery, outcome.query_messages);
  count(net::MessageType::kQueryReply, outcome.reply_messages);

  if (config_.mode == ListMode::kAdaptive) {
    for (const auto& hit : outcome.hits) {
      core::ResultInfo info;
      info.responder = hit.node;
      // Result-count dilution (the paper's R denominator): a repository
      // that answers queries nobody else can answer is worth more than
      // one of many holders of a ubiquitous document.
      info.items = 1.0 / static_cast<double>(outcome.hits.size());
      info.latency_s = hit.reply_at_s;
      repos_[from].stats.add(
          hit.node, benefit_.benefit(info) * adversary_benefit_weight(hit.node));
    }
  }
  return outcome;
}

void DigLibSim::issue_query(net::NodeId r) {
  if (node_dead(r)) return;  // a crashed repository stops querying for good
  {
    // Holdings and copy counts are immutable after construction and the
    // search only reads the overlay, so shards search concurrently under
    // the shared section (a no-op serially); reorganizations run
    // exclusively via schedule_every.
    const Section lock = shared_section();
    const DocId doc = draw_doc(repos_[r].topic);
    capture_query_arrival(r, doc);
    const auto outcome = search_doc(r, doc);
    if (reporting()) {
      DigLibResult& out = res();
      ++out.queries;
      if (outcome.satisfied()) ++out.satisfied;
      out.messages_per_query.add(
          static_cast<double>(outcome.query_messages));
      out.copies_found += outcome.hits.size();
      // Copies available elsewhere (the initiator's own copy, if any, does
      // not count: it would not be searched for).
      std::uint32_t available = copy_count_[doc];
      if (holds(r, doc) && available > 0) --available;
      out.copies_available += available;
      if (outcome.satisfied())
        out.first_result_delay_s.add(outcome.first_result_delay_s());
    }
  }

  schedule_keyed_self(r, interquery_.sample(rng()), kLibQuery, r, 0,
                      [this, r] { issue_query(r); });
}

load::Served DigLibSim::serve_injected_query(net::NodeId r,
                                             std::uint64_t item) {
  // Open-loop runs are serial, so the section is a no-op; taking it anyway
  // keeps the path identical to closed-loop service.
  const Section lock = shared_section();
  const DocId doc = item == load::kAnyItem
                        ? draw_doc(repos_[r].topic, load_lane())
                        : static_cast<DocId>(item % config_.num_docs);
  const auto outcome = search_doc(r, doc);
  load::Served served;
  served.hit = outcome.satisfied();
  served.latency_s =
      served.hit ? outcome.first_result_delay_s() : config_.query_timeout_s;
  return served;
}

void DigLibSim::update_neighbors(net::NodeId r) {
  if (node_dead(r)) return;  // crashed: no more reorganizations
  Repository& repo = repos_[r];

  // Exploration first (Algo 2): rotate the designated random link so the
  // statistics keep meeting repositories outside the learned set.  In a
  // churnless federation this is the only source of discovery — without
  // it the benefit-driven slots collapse same-topic repositories into a
  // clique whose 2-hop reach is the clique itself.
  if (repo.exploration_link != net::kInvalidNode) {
    overlay_.unlink(r, repo.exploration_link);
    repo.exploration_link = net::kInvalidNode;
  }

  // Then one learned exchange per update (the lesson of the Gnutella case
  // study; see bench_ablation_exchange), over the non-exploration slots.
  // Capacity-aware peers (adversary layer) reserve the exploration slot out
  // of their *bounded* degree.
  const std::size_t learned_cap =
      adversary_degree_bound(r, config_.num_neighbors) - 1;
  const auto plan = core::plan_update(
      repo.stats, overlay_.out_neighbors(r), learned_cap,
      [r](net::NodeId n) { return n != r; });
  if (!plan.additions.empty() &&
      !overlay_.lists(r).has_out(plan.additions.front())) {
    const net::NodeId cand = plan.additions.front();
    bool cand_reachable = true;
    if (fault_layer_active()) {
      // The invitation must actually reach the candidate (it may be
      // crashed, or the message may be lost) before any slot is freed.
      count(net::MessageType::kInvitation);
      const auto t = transmit(net::MessageType::kInvitation, r, cand, -1);
      if (t.duplicate) count(net::MessageType::kInvitation);
      cand_reachable = t.deliver;
    }
    if (cand_reachable) {
      if (overlay_.lists(r).out().size() >= learned_cap) {
        const net::NodeId worst =
            core::least_beneficial(repo.stats, overlay_.out_neighbors(r));
        if (worst != net::kInvalidNode) {
          overlay_.unlink(r, worst);
          count(net::MessageType::kEviction);
          if (fault_layer_active()) {
            // Notification only: the unlink stands even if it is lost.
            const auto te =
                transmit(net::MessageType::kEviction, r, worst, -1);
            if (te.duplicate) count(net::MessageType::kEviction);
          }
        }
      }
      overlay_.link(r, cand);
      if (!fault_layer_active()) count(net::MessageType::kInvitation);
    }
  }

  // Install the new exploration link.
  int attempts = 8;
  while (attempts-- > 0) {
    const auto q =
        static_cast<net::NodeId>(rng().uniform_int(config_.num_repositories));
    if (q == r || overlay_.lists(r).has_out(q)) continue;
    if (fault_layer_active()) {
      // The probe's fate is resolved first; the ping is accounted — as in
      // the baseline — only for the attempt that installs the link, so an
      // idle fault layer leaves the ledger untouched.
      const auto t = transmit(net::MessageType::kPing, r, q, -1);
      if (!t.deliver) continue;  // unanswered probe: try another target
      if (overlay_.link(r, q)) {
        repo.exploration_link = q;
        count(net::MessageType::kPing);
        if (t.duplicate) count(net::MessageType::kPing);
        break;
      }
      continue;
    }
    if (overlay_.link(r, q)) {
      repo.exploration_link = q;
      count(net::MessageType::kPing);
      break;
    }
  }

  // Statistics decay so the ranking tracks the current overlay rather
  // than compounding forever.
  repo.stats.decay(0.5);
}

DigLibResult DigLibSim::run() {
  if (parallel()) {
    // The holder-dedup stamps are a single table; concurrent shards would
    // race on its generations.
    sim::validate_or_throw(
        config_.search_strategy != sim::SearchStrategyKind::kLocalIndices,
        "diglib", "search_strategy local-indices requires a serial run");
    shard_results_.assign(shards(), DigLibResult{});
  }
  // A resumed run takes its pending query events from the snapshot and must
  // not draw the initial delays, but it still registers the per-repository
  // update periodics in the same order so indices line up with the file.
  for (net::NodeId r = 0; r < config_.num_repositories; ++r) {
    if (!resumed())
      schedule_keyed_self(r, interquery_.sample(rng()), kLibQuery, r, 0,
                          [this, r] { issue_query(r); });
    if (config_.mode == ListMode::kAdaptive) {
      if (resumed()) {
        register_periodic(config_.update_period_s,
                          [this, r] { update_neighbors(r); });
      } else {
        schedule_every(rng().uniform(0.0, config_.update_period_s),
                       config_.update_period_s,
                       [this, r] { update_neighbors(r); });
      }
    }
  }
  run_until_horizon();
  for (const DigLibResult& r : shard_results_) merge_results(result_, r);
  shard_results_.clear();
  result_.traffic = traffic();
  return result_;
}

void merge_results(DigLibResult& into, const DigLibResult& shard) {
  into.queries += shard.queries;
  into.satisfied += shard.satisfied;
  into.copies_found += shard.copies_found;
  into.copies_available += shard.copies_available;
  into.first_result_delay_s += shard.first_result_delay_s;
  into.messages_per_query += shard.messages_per_query;
}

void DigLibSim::save_domain(snap::Writer::Out& out) const {
  for (const Repository& repo : repos_) {
    snap::put_stats_store(out, repo.stats);
    out.u32(repo.exploration_link);
  }
  // traffic is assigned at the end of run() from the restored ledger.
  out.u64(result_.queries);
  out.u64(result_.satisfied);
  out.u64(result_.copies_found);
  out.u64(result_.copies_available);
  snap::put_summary(out, result_.first_result_delay_s);
  snap::put_summary(out, result_.messages_per_query);
}

void DigLibSim::load_domain(snap::Reader::In& in) {
  for (Repository& repo : repos_) {
    snap::get_stats_store(in, repo.stats);
    repo.exploration_link = in.u32();
  }
  result_.queries = in.u64();
  result_.satisfied = in.u64();
  result_.copies_found = in.u64();
  result_.copies_available = in.u64();
  snap::get_summary(in, result_.first_result_delay_s);
  snap::get_summary(in, result_.messages_per_query);
}

void DigLibSim::restore_keyed_event(double t, std::uint32_t kind,
                                    std::uint64_t a, std::uint64_t b) {
  if (kind == kLibQuery) {
    if (a >= repos_.size())
      throw snap::SnapshotError("diglib: query event repository out of range");
    const auto r = static_cast<net::NodeId>(a);
    schedule_keyed_at(t, kLibQuery, a, 0, [this, r] { issue_query(r); });
    return;
  }
  OverlayEngine::restore_keyed_event(t, kind, a, b);
}

}  // namespace dsf::diglib
