#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dsf::metrics {

/// Tiny CSV writer so every bench can dump its series for external
/// plotting alongside the printed table.  Values are quoted only when they
/// contain a comma, quote, or newline.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  Throws on I/O
  /// failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  std::size_t columns() const noexcept { return columns_; }

 private:
  static std::string escape(const std::string& cell);
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace dsf::metrics
