#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dsf::metrics {

/// Minimal fixed-width table printer for the bench harnesses, which print
/// the same rows/series the paper's figures report.  Cells are strings;
/// columns are sized to the widest cell and right-aligned except the first.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header underline; throws if a row width mismatches.
  void print(std::ostream& os) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fraction digits.
std::string fmt(double value, int digits = 1);

/// Formats an integer with thousands separators (1,234,567) to match the
/// paper's figure annotations.
std::string fmt_count(std::uint64_t value);

}  // namespace dsf::metrics
