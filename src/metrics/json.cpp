#include "metrics/json.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dsf::metrics {

JsonValue JsonValue::string(std::string s) {
  JsonValue v(Kind::kString);
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v(Kind::kNumber);
  v.num_ = value;
  return v;
}

JsonValue JsonValue::number(std::int64_t value) {
  JsonValue v(Kind::kInteger);
  v.int_ = value;
  return v;
}

JsonValue JsonValue::number(std::uint64_t value) {
  JsonValue v(Kind::kInteger);
  v.int_ = static_cast<std::int64_t>(value);
  return v;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v(Kind::kBool);
  v.bool_ = b;
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::kObject)
    throw std::logic_error("JsonValue::set on non-object");
  members_.emplace_back(key, std::move(v));
  return *this;
}

JsonValue& JsonValue::push(JsonValue v) {
  if (kind_ != Kind::kArray)
    throw std::logic_error("JsonValue::push on non-array");
  elements_.push_back(std::move(v));
  return *this;
}

void JsonValue::write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void JsonValue::write(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        os << inner_pad;
        write_escaped(os, members_[i].first);
        os << ": ";
        members_[i].second.write(os, indent + 1);
        if (i + 1 < members_.size()) os << ',';
        os << '\n';
      }
      os << pad << '}';
      return;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        os << "[]";
        return;
      }
      os << "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        os << inner_pad;
        elements_[i].write(os, indent + 1);
        if (i + 1 < elements_.size()) os << ',';
        os << '\n';
      }
      os << pad << ']';
      return;
    }
    case Kind::kString:
      write_escaped(os, str_);
      return;
    case Kind::kNumber: {
      if (std::isfinite(num_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.12g", num_);
        os << buf;
      } else {
        os << "null";  // JSON has no Inf/NaN
      }
      return;
    }
    case Kind::kInteger:
      os << int_;
      return;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      return;
  }
}

std::string JsonValue::to_string() const {
  std::ostringstream ss;
  write(ss);
  return ss.str();
}

}  // namespace dsf::metrics
