#pragma once

// JsonEmitter: the one JSON writer behind every bench's machine-readable
// output.  The benches used to hand-roll their documents with snprintf —
// three separate escaping bugs waiting to happen and no shared notion of
// schema identity.  The emitter streams a pretty-printed document with
// correct string escaping, tracks nesting/comma state so call sites read
// like the document they produce, and stamps a versioned schema tag
// ("dsf-<family>-v<N>") that the run_*.sh scripts validate against.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dsf::metrics {

class JsonEmitter {
 public:
  /// Writes to `os`; emit exactly one root value (begin_object()) and
  /// call finish() (or let the destructor do it).
  explicit JsonEmitter(std::ostream& os);
  ~JsonEmitter();

  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  /// Containers.  The key-less overloads are for the root and for array
  /// elements; keyed overloads for object members.
  JsonEmitter& begin_object();
  JsonEmitter& begin_object(std::string_view key);
  JsonEmitter& end_object();
  JsonEmitter& begin_array(std::string_view key);
  JsonEmitter& end_array();

  /// Scalar members.
  JsonEmitter& field(std::string_view key, std::string_view value);
  JsonEmitter& field(std::string_view key, const char* value);
  JsonEmitter& field(std::string_view key, std::int64_t value);
  JsonEmitter& field(std::string_view key, std::uint64_t value);
  JsonEmitter& field(std::string_view key, int value);
  JsonEmitter& field(std::string_view key, bool value);
  /// `digits` = fraction digits (fixed notation, matching the precision
  /// the hand-rolled writers chose per metric).
  JsonEmitter& field(std::string_view key, double value, int digits = 6);

  /// Stamps the document's schema identity as its first member by
  /// convention: "schema": "dsf-<family>-v<version>".
  JsonEmitter& schema(std::string_view family, int version);

  /// Closes any open containers and the document (idempotent).
  void finish();

 private:
  void comma_and_indent();
  void write_key(std::string_view key);
  void write_escaped(std::string_view s);

  std::ostream& os_;
  struct Level {
    bool array = false;  ///< ']' vs '}' on close
    bool has = false;    ///< a first element was written
  };
  std::vector<Level> stack_;
  bool finished_ = false;
};

}  // namespace dsf::metrics
