#include "metrics/time_series.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsf::metrics {

TimeSeries::TimeSeries(double bucket_width_s) : width_(bucket_width_s) {
  if (!(bucket_width_s > 0.0))
    throw std::invalid_argument("TimeSeries: bucket width must be > 0");
}

void TimeSeries::add(des::SimTime t, std::uint64_t n) {
  if (t < 0.0) throw std::invalid_argument("TimeSeries: negative time");
  const auto i = static_cast<std::size_t>(t / width_);
  if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
  buckets_[i] += n;
}

std::uint64_t TimeSeries::sum(std::size_t first, std::size_t last) const noexcept {
  if (buckets_.empty() || first > last) return 0;
  last = std::min(last, buckets_.size() - 1);
  std::uint64_t s = 0;
  for (std::size_t i = first; i <= last && i < buckets_.size(); ++i)
    s += buckets_[i];
  return s;
}

std::uint64_t TimeSeries::total() const noexcept {
  std::uint64_t s = 0;
  for (auto b : buckets_) s += b;
  return s;
}

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

Summary& Summary::operator+=(const Summary& o) noexcept {
  if (o.n_ == 0) return *this;
  if (n_ == 0) {
    *this = o;
    return *this;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / n;
  mean_ += delta * static_cast<double>(o.n_) / n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
  return *this;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) noexcept {
  ++count_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++bins_[static_cast<std::size_t>((x - lo_) / width_)];
  }
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (target <= next && bins_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace dsf::metrics
