#include "metrics/time_series.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsf::metrics {

TimeSeries::TimeSeries(double bucket_width_s) : width_(bucket_width_s) {
  // `> 0.0` alone rejects NaN and non-positives but admits +inf, which
  // would fold every sample into bucket 0 while still comparing equal in
  // the operator+= geometry check — a silently wrong series.
  if (!std::isfinite(bucket_width_s) || !(bucket_width_s > 0.0))
    throw std::invalid_argument("TimeSeries: bucket width must be finite and > 0");
}

void TimeSeries::add(des::SimTime t, std::uint64_t n) {
  // NaN passes every `<` comparison, so the finiteness check must come
  // first: casting NaN (or an out-of-range value) to size_t is UB.
  if (!std::isfinite(t))
    throw std::invalid_argument("TimeSeries: non-finite time");
  if (t < 0.0) throw std::invalid_argument("TimeSeries: negative time");
  const double bucket = t / width_;
  // A finite but astronomically large t would overflow the size_t cast
  // (UB) before the resize ever got a chance to fail; reject it instead.
  // The bound is far beyond any allocatable bucket vector.
  static constexpr double kMaxBuckets = 1e15;
  if (bucket >= kMaxBuckets)
    throw std::length_error("TimeSeries: time exceeds bucket index range");
  const auto i = static_cast<std::size_t>(bucket);
  if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
  buckets_[i] += n;
}

std::uint64_t TimeSeries::sum(std::size_t first, std::size_t last) const noexcept {
  if (buckets_.empty() || first > last) return 0;
  last = std::min(last, buckets_.size() - 1);
  std::uint64_t s = 0;
  for (std::size_t i = first; i <= last && i < buckets_.size(); ++i)
    s += buckets_[i];
  return s;
}

TimeSeries& TimeSeries::operator+=(const TimeSeries& o) {
  if (width_ != o.width_)
    throw std::invalid_argument("TimeSeries: merging different bucket widths");
  if (o.buckets_.size() > buckets_.size()) buckets_.resize(o.buckets_.size(), 0);
  for (std::size_t i = 0; i < o.buckets_.size(); ++i)
    buckets_[i] += o.buckets_[i];
  return *this;
}

std::uint64_t TimeSeries::total() const noexcept {
  std::uint64_t s = 0;
  for (auto b : buckets_) s += b;
  return s;
}

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

Summary& Summary::operator+=(const Summary& o) noexcept {
  if (o.n_ == 0) return *this;
  if (n_ == 0) {
    *this = o;
    return *this;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / n;
  mean_ += delta * static_cast<double>(o.n_) / n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
  return *this;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  // An infinite edge passes `hi > lo` but makes the bin width infinite
  // (every in-range add computes a NaN index — UB at the cast), so the
  // geometry must be finite outright.
  if (!std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("Histogram: edges must be finite");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) noexcept {
  // A NaN sample fails both range checks and would reach the bin-index
  // cast (UB); it carries no position, so it is dropped outright.
  if (std::isnan(x)) return;
  ++count_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++bins_[static_cast<std::size_t>((x - lo_) / width_)];
  }
}

Histogram& Histogram::operator+=(const Histogram& o) {
  if (lo_ != o.lo_ || hi_ != o.hi_ || bins_.size() != o.bins_.size())
    throw std::invalid_argument("Histogram: merging different geometries");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
  count_ += o.count_;
  underflow_ += o.underflow_;
  overflow_ += o.overflow_;
  return *this;
}

double Histogram::quantile(double q) const {
  // NaN survives std::clamp (every comparison is false) and then fails
  // every cumulative-mass test below, silently falling through to the
  // hi_-edge answer; a non-finite quantile rank is a caller bug, so it
  // throws instead of clamping.
  if (!std::isfinite(q))
    throw std::invalid_argument("Histogram::quantile: non-finite q");
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  const double cum_under = static_cast<double>(underflow_);
  // `target <= cum` alone mis-answers q=0 with an empty underflow bin
  // (0 <= 0 short-circuits to lo_ even when all mass sits far above it):
  // lo_ is only the answer when underflow actually holds mass.
  if (target <= cum_under && underflow_ > 0) return lo_;
  if (q == 0.0) {
    // Smallest recorded value: the lower edge of the first non-empty bin
    // (all mass in overflow degenerates to hi_).
    for (std::size_t i = 0; i < bins_.size(); ++i)
      if (bins_[i] > 0) return lo_ + static_cast<double>(i) * width_;
    return overflow_ > 0 ? hi_ : lo_;
  }
  double cum = cum_under;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (target <= next && bins_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  // Ran past every bin.  With overflow mass hi_ is all we can say; with
  // none (possible only through floating-point drift at huge counts) the
  // largest recorded value is the top edge of the last non-empty bin.
  if (overflow_ == 0)
    for (std::size_t i = bins_.size(); i-- > 0;)
      if (bins_[i] > 0) return lo_ + static_cast<double>(i + 1) * width_;
  return hi_;
}

}  // namespace dsf::metrics
