#include "metrics/json_emitter.h"

#include <cstdio>

namespace dsf::metrics {

JsonEmitter::JsonEmitter(std::ostream& os) : os_(os) {}

JsonEmitter::~JsonEmitter() { finish(); }

void JsonEmitter::comma_and_indent() {
  if (!stack_.empty()) {
    if (stack_.back().has) os_ << ',';
    stack_.back().has = true;
    os_ << '\n';
  }
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonEmitter::write_escaped(std::string_view s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\t': os_ << "\\t"; break;
      case '\r': os_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonEmitter::write_key(std::string_view key) {
  comma_and_indent();
  write_escaped(key);
  os_ << ": ";
}

JsonEmitter& JsonEmitter::begin_object() {
  comma_and_indent();
  os_ << '{';
  stack_.push_back({false, false});
  return *this;
}

JsonEmitter& JsonEmitter::begin_object(std::string_view key) {
  write_key(key);
  os_ << '{';
  stack_.push_back({false, false});
  return *this;
}

JsonEmitter& JsonEmitter::end_object() {
  const bool had = stack_.back().has;
  stack_.pop_back();
  if (had) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << '}';
  return *this;
}

JsonEmitter& JsonEmitter::begin_array(std::string_view key) {
  write_key(key);
  os_ << '[';
  stack_.push_back({true, false});
  return *this;
}

JsonEmitter& JsonEmitter::end_array() {
  const bool had = stack_.back().has;
  stack_.pop_back();
  if (had) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << ']';
  return *this;
}

JsonEmitter& JsonEmitter::field(std::string_view key, std::string_view value) {
  write_key(key);
  write_escaped(value);
  return *this;
}

JsonEmitter& JsonEmitter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

JsonEmitter& JsonEmitter::field(std::string_view key, std::int64_t value) {
  write_key(key);
  os_ << value;
  return *this;
}

JsonEmitter& JsonEmitter::field(std::string_view key, std::uint64_t value) {
  write_key(key);
  os_ << value;
  return *this;
}

JsonEmitter& JsonEmitter::field(std::string_view key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

JsonEmitter& JsonEmitter::field(std::string_view key, bool value) {
  write_key(key);
  os_ << (value ? "true" : "false");
  return *this;
}

JsonEmitter& JsonEmitter::field(std::string_view key, double value,
                                int digits) {
  write_key(key);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  os_ << buf;
  return *this;
}

JsonEmitter& JsonEmitter::schema(std::string_view family, int version) {
  return field("schema", "dsf-" + std::string(family) + "-v" +
                             std::to_string(version));
}

void JsonEmitter::finish() {
  if (finished_) return;
  finished_ = true;
  // Safety net for early returns; call sites normally close explicitly.
  while (!stack_.empty()) {
    if (stack_.back().array) end_array();
    else end_object();
  }
  os_ << '\n';
}

}  // namespace dsf::metrics
