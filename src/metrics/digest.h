#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace dsf::metrics {

/// Order-sensitive 64-bit FNV-1a fingerprint over a stream of metric
/// values.  Used by the determinism regression tests: two runs of the same
/// simulation with the same seed must produce the same fingerprint, and a
/// fingerprint comparison reports divergence without storing every series.
/// Doubles are folded in through their bit pattern (std::bit_cast), so the
/// comparison is exact, not epsilon-based.
class Fingerprint {
 public:
  Fingerprint& add(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= kPrime;
    }
    return *this;
  }

  Fingerprint& add(double v) noexcept {
    return add(std::bit_cast<std::uint64_t>(v));
  }

  Fingerprint& add(std::string_view s) noexcept {
    for (unsigned char c : s) {
      hash_ ^= c;
      hash_ *= kPrime;
    }
    return *this;
  }

  std::uint64_t value() const noexcept { return hash_; }

  friend bool operator==(Fingerprint a, Fingerprint b) noexcept {
    return a.hash_ == b.hash_;
  }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t hash_ = kOffset;
};

}  // namespace dsf::metrics
