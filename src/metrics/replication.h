#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "metrics/time_series.h"

namespace dsf::metrics {

/// Mean and normal-approximation confidence half-width of a sample of
/// replica measurements (simulation outputs across seeds).
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< z * s / sqrt(n)
  std::size_t n = 0;

  double lo() const noexcept { return mean - half_width; }
  double hi() const noexcept { return mean + half_width; }

  /// True if `value` lies inside the interval.
  bool contains(double value) const noexcept {
    return value >= lo() && value <= hi();
  }

  /// True if the interval excludes zero — the usual "is the effect real"
  /// check for a difference or a relative gain.
  bool excludes_zero() const noexcept { return lo() > 0.0 || hi() < 0.0; }
};

/// Computes the CI of a sample at the given z (1.96 ≈ 95% under the
/// normal approximation; replica counts here are small, so treat the
/// interval as indicative rather than exact).
ConfidenceInterval confidence_interval(const std::vector<double>& sample,
                                       double z = 1.96);

/// Runs `run(seed)` for `replicas` distinct seeds derived from
/// `base_seed` and returns the per-replica measurements.  Deliberately
/// sequential: callers that want parallel replication compose this with
/// des::parallel_map themselves.
std::vector<double> replicate(std::size_t replicas, std::uint64_t base_seed,
                              const std::function<double(std::uint64_t)>& run);

}  // namespace dsf::metrics
