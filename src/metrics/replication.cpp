#include "metrics/replication.h"

namespace dsf::metrics {

ConfidenceInterval confidence_interval(const std::vector<double>& sample,
                                       double z) {
  ConfidenceInterval ci;
  ci.n = sample.size();
  if (sample.empty()) return ci;

  Summary s;
  for (double x : sample) s.add(x);
  ci.mean = s.mean();
  if (sample.size() > 1)
    ci.half_width = z * s.stddev() / std::sqrt(static_cast<double>(ci.n));
  return ci;
}

std::vector<double> replicate(std::size_t replicas, std::uint64_t base_seed,
                              const std::function<double(std::uint64_t)>& run) {
  std::vector<double> out;
  out.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r)
    out.push_back(run(base_seed + 1000003ULL * (r + 1)));
  return out;
}

}  // namespace dsf::metrics
