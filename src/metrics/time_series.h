#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "des/event_queue.h"

namespace dsf::metrics {

/// Fixed-width time-bucketed counter: counts events into consecutive
/// buckets of `bucket_width` seconds starting at t = 0.  The paper reports
/// per-hour hit and message counts, so the Gnutella harness uses
/// bucket_width = 3600.
class TimeSeries {
 public:
  explicit TimeSeries(double bucket_width_s);

  /// Adds `n` to the bucket containing time `t` (t >= 0).
  void add(des::SimTime t, std::uint64_t n = 1);

  double bucket_width() const noexcept { return width_; }
  std::size_t num_buckets() const noexcept { return buckets_.size(); }

  /// Count in bucket `i` (0 beyond the recorded range).
  std::uint64_t bucket(std::size_t i) const noexcept {
    return i < buckets_.size() ? buckets_[i] : 0;
  }

  /// Sum of all buckets in [first, last] inclusive, clamped to range.
  std::uint64_t sum(std::size_t first, std::size_t last) const noexcept;

  /// Sum over the whole series.
  std::uint64_t total() const noexcept;

  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// Bucket-wise merge of a shard collected with the same width (throws
  /// std::invalid_argument otherwise).  Addition is commutative, but the
  /// sweep layer still folds shards in input order so merged floating-point
  /// metrics next to these counters stay byte-identical for any thread
  /// count.
  TimeSeries& operator+=(const TimeSeries& o);

  /// Checkpoint restore: replaces the bucket vector verbatim.  Trailing
  /// zero buckets are preserved exactly — rebuilding through add() would
  /// drop them, and the snapshot contract is byte-identity.
  void restore(std::vector<std::uint64_t> buckets) {
    buckets_ = std::move(buckets);
  }

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
};

/// Streaming scalar summary: count, mean, variance (Welford), min, max.
/// Used for first-result delays and any per-query scalar.
class Summary {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  Summary& operator+=(const Summary& o) noexcept;  ///< parallel merge

  /// Raw Welford accumulator state, for exact checkpoint round-trips
  /// (m2_ is not recoverable from variance() without rounding).
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  Raw raw() const noexcept { return {n_, mean_, m2_, min_, max_}; }
  void restore(const Raw& r) noexcept {
    n_ = r.n;
    mean_ = r.mean;
    m2_ = r.m2;
    min_ = r.min;
    max_ = r.max;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi) with overflow/underflow bins; cheap
/// enough for per-message latencies.  Quantiles are linearly interpolated
/// within bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  /// Linearly interpolated quantile; `q` is clamped into [0, 1].  An
  /// empty histogram answers 0.0 (the documented sentinel — callers that
  /// must distinguish check count() first); a non-finite q throws
  /// std::invalid_argument rather than silently clamping.
  double quantile(double q) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  const std::vector<std::uint64_t>& bins() const noexcept { return bins_; }

  /// Bin-wise merge of a shard with identical geometry (same lo, hi and
  /// bin count — throws std::invalid_argument otherwise).  A merged
  /// histogram is indistinguishable from one that saw every sample
  /// directly, so per-shard collection loses nothing.
  Histogram& operator+=(const Histogram& o);

  /// Checkpoint restore onto a histogram constructed with the original
  /// geometry; the bin vector must match the constructed size.
  void restore(std::vector<std::uint64_t> bins, std::uint64_t count,
               std::uint64_t underflow, std::uint64_t overflow) {
    if (bins.size() != bins_.size())
      throw std::invalid_argument("Histogram::restore: bin count mismatch");
    bins_ = std::move(bins);
    count_ = count;
    underflow_ = underflow;
    overflow_ = overflow;
  }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace dsf::metrics
