#pragma once

#include <cstdint>
#include <vector>

#include "des/event_queue.h"

namespace dsf::metrics {

/// Fixed-width time-bucketed counter: counts events into consecutive
/// buckets of `bucket_width` seconds starting at t = 0.  The paper reports
/// per-hour hit and message counts, so the Gnutella harness uses
/// bucket_width = 3600.
class TimeSeries {
 public:
  explicit TimeSeries(double bucket_width_s);

  /// Adds `n` to the bucket containing time `t` (t >= 0).
  void add(des::SimTime t, std::uint64_t n = 1);

  double bucket_width() const noexcept { return width_; }
  std::size_t num_buckets() const noexcept { return buckets_.size(); }

  /// Count in bucket `i` (0 beyond the recorded range).
  std::uint64_t bucket(std::size_t i) const noexcept {
    return i < buckets_.size() ? buckets_[i] : 0;
  }

  /// Sum of all buckets in [first, last] inclusive, clamped to range.
  std::uint64_t sum(std::size_t first, std::size_t last) const noexcept;

  /// Sum over the whole series.
  std::uint64_t total() const noexcept;

  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// Bucket-wise merge of a shard collected with the same width (throws
  /// std::invalid_argument otherwise).  Addition is commutative, but the
  /// sweep layer still folds shards in input order so merged floating-point
  /// metrics next to these counters stay byte-identical for any thread
  /// count.
  TimeSeries& operator+=(const TimeSeries& o);

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
};

/// Streaming scalar summary: count, mean, variance (Welford), min, max.
/// Used for first-result delays and any per-query scalar.
class Summary {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  Summary& operator+=(const Summary& o) noexcept;  ///< parallel merge

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi) with overflow/underflow bins; cheap
/// enough for per-message latencies.  Quantiles are linearly interpolated
/// within bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double quantile(double q) const;  ///< q in [0, 1]
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  const std::vector<std::uint64_t>& bins() const noexcept { return bins_; }

  /// Bin-wise merge of a shard with identical geometry (same lo, hi and
  /// bin count — throws std::invalid_argument otherwise).  A merged
  /// histogram is indistinguishable from one that saw every sample
  /// directly, so per-shard collection loses nothing.
  Histogram& operator+=(const Histogram& o);

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace dsf::metrics
