#include "metrics/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace dsf::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (c == 0) {
        os << row[c];
        for (std::size_t p = row[c].size(); p < widths[c]; ++p) os << ' ';
      } else {
        for (std::size_t p = row[c].size(); p < widths[c]; ++p) os << ' ';
        os << row[c];
      }
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 ? digits.size() % 3 : 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i >= lead && (i - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace dsf::metrics
