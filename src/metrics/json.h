#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dsf::metrics {

/// Minimal JSON emitter for machine-readable result dumps from the CLI
/// driver and benches.  Build a tree of values and stream it; strings are
/// escaped, doubles printed with enough precision to round-trip.
class JsonValue {
 public:
  static JsonValue object() { return JsonValue(Kind::kObject); }
  static JsonValue array() { return JsonValue(Kind::kArray); }
  static JsonValue string(std::string s);
  static JsonValue number(double v);
  static JsonValue number(std::int64_t v);
  static JsonValue number(std::uint64_t v);
  static JsonValue boolean(bool b);

  /// Object member (only valid on objects); returns *this for chaining.
  JsonValue& set(const std::string& key, JsonValue v);
  /// Array element (only valid on arrays).
  JsonValue& push(JsonValue v);

  void write(std::ostream& os, int indent = 0) const;
  std::string to_string() const;

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInteger, kBool };
  explicit JsonValue(Kind kind) : kind_(kind) {}

  static void write_escaped(std::ostream& os, const std::string& s);

  Kind kind_;
  std::string str_;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

}  // namespace dsf::metrics
